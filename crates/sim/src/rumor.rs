//! Rumors, paged per-node rumor sets, and compressed acquisition logs.
//!
//! Every node in an information-dissemination instance can originate one
//! rumor; rumor `i` is "the rumor whose source is node `i`".  A node's state
//! with respect to dissemination is the set of rumors it currently knows.
//!
//! # Paged rumor sets
//!
//! [`RumorSet`] stores that set as an **adaptive paged bitset**: the universe
//! is split into fixed 4096-bit pages, kept in a sorted sparse vector with
//! three page states —
//!
//! * **empty** — the page is simply absent (no storage);
//! * **dense** — an owned 64-word block holding the page's bits;
//! * **full** — a shared sentinel ([`PageState::Full`]) meaning every bit of
//!   the page is set (no storage).
//!
//! A set whose every page is full additionally **saturation-collapses** to
//! the canonical full representation — no pages at all — so a node that has
//! learned everything costs a few machine words instead of `n/8` bytes.  In
//! the saturating all-to-all regime this is what breaks the dense-bitset
//! `2·n²/8` memory wall: nodes spend most of a run either nearly-empty
//! (a handful of pages) or fully informed (zero pages).
//!
//! The representation is kept **canonical** at all times (pages sorted and
//! unique, never empty, all-ones pages always stored as the full sentinel,
//! fully saturated sets always collapsed), so structural equality is semantic
//! equality and `#[derive(PartialEq)]` is sound.

use std::fmt;

use gossip_graph::NodeId;

/// Identifier of a rumor.  Rumor `i` originates at node `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RumorId(pub u32);

impl RumorId {
    /// The rumor originating at `node`.
    pub fn of_node(node: NodeId) -> Self {
        RumorId(node.index() as u32)
    }

    /// Dense index of this rumor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for RumorId {
    // gossip-lint: allow(panic-path): documented precondition; universe sizes are far below u32::MAX
    fn from(i: usize) -> Self {
        RumorId(u32::try_from(i).expect("rumor index exceeds u32::MAX"))
    }
}

impl fmt::Display for RumorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A run of consecutive rumor ids `first, first+1, …, first+len-1`, the unit
/// in which the engine's merge path reports newly learned rumors.
pub(crate) type RumorRun = (RumorId, u32);

/// Bits per page of a [`RumorSet`].
pub(crate) const PAGE_BITS: usize = 4096;
/// 64-bit words per page.
const PAGE_WORDS: usize = PAGE_BITS / 64;

/// Storage of one non-empty page.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PageState {
    /// Every bit of the page (up to its capacity) is set; no storage.
    Full,
    /// An owned 64-word block holding the page's bits.
    Dense(Box<[u64; PAGE_WORDS]>),
}

/// One non-empty page of a [`RumorSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct PageEntry {
    /// Page number (bit `i` of the universe lives in page `i / 4096`).
    index: u32,
    /// Number of set bits in the page (`== capacity` iff the state is full).
    ones: u32,
    state: PageState,
}

/// A set of rumors over the universe `0..universe`, stored as a sparse
/// vector of 4096-bit pages (see the module docs for the representation).
#[derive(Clone, PartialEq, Eq)]
pub struct RumorSet {
    universe: usize,
    /// Number of rumors in the set (maintained incrementally).
    len: usize,
    /// Non-empty pages, sorted by `index`.  Empty when the set is empty *or*
    /// fully saturated (`len == universe`), the canonical collapsed form.
    pages: Vec<PageEntry>,
}

/// The in-page word holding bit `w*64..` of a full page of capacity `cap`.
fn full_page_word(cap: u32, w: usize) -> u64 {
    let lo = (w * 64) as u32;
    if lo + 64 <= cap {
        !0
    } else if lo >= cap {
        0
    } else {
        (1u64 << (cap - lo)) - 1
    }
}

/// Appends the new-rumor run `first..first+len`, coalescing with the
/// previously pushed run when exactly contiguous.
fn push_new_run(out: &mut Vec<RumorRun>, first: usize, len: u32) {
    if len == 0 {
        return;
    }
    if let Some(last) = out.last_mut() {
        if last.0.index() as u64 + u64::from(last.1) == first as u64 {
            last.1 += len;
            return;
        }
    }
    out.push((RumorId(first as u32), len));
}

/// Decomposes the set bits of `new_bits` (a word whose bit 0 is universe bit
/// `word_base`) into maximal consecutive runs, in ascending order.
fn push_word_new_runs(out: &mut Vec<RumorRun>, word_base: usize, mut new_bits: u64) {
    while new_bits != 0 {
        let tz = new_bits.trailing_zeros();
        let run = (new_bits >> tz).trailing_ones();
        push_new_run(out, word_base + tz as usize, run);
        if tz + run >= 64 {
            break;
        }
        new_bits &= !0u64 << (tz + run);
    }
}

impl RumorSet {
    /// Creates an empty rumor set over a universe of `universe` rumors.
    pub fn empty(universe: usize) -> Self {
        RumorSet {
            universe,
            len: 0,
            pages: Vec::new(),
        }
    }

    /// Creates a singleton set containing only `rumor`.
    ///
    /// # Panics
    ///
    /// Panics if `rumor` is outside the universe.
    pub fn singleton(universe: usize, rumor: RumorId) -> Self {
        let mut s = Self::empty(universe);
        s.insert(rumor);
        s
    }

    /// Size of the rumor universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of set bits the page can hold (4096 except for the last page).
    fn page_capacity(&self, page: u32) -> u32 {
        let start = page as usize * PAGE_BITS;
        debug_assert!(start < self.universe || self.universe == 0);
        (self.universe - start).min(PAGE_BITS) as u32
    }

    /// Collapses to the canonical full representation once saturated.
    fn collapse_if_full(&mut self) {
        if self.len == self.universe && !self.pages.is_empty() {
            debug_assert!(self.pages.iter().all(|e| e.state == PageState::Full));
            self.pages = Vec::new();
        }
    }

    /// Number of dense (heap-allocated) pages — the set's live page cost.
    /// Empty and full pages are free; this is what [`MemStats`]'s page
    /// counters aggregate.
    ///
    /// [`MemStats`]: crate::MemStats
    pub fn live_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|e| matches!(e.state, PageState::Dense(_)))
            .count()
    }

    /// Heap bytes of one dense page, including its directory entry — the
    /// conversion factor for the engine's deterministic page counters.
    pub(crate) fn page_cost_bytes() -> u64 {
        (PAGE_WORDS * 8 + std::mem::size_of::<PageEntry>()) as u64
    }

    /// Fixed per-set bytes (the struct itself, pages excluded).
    pub(crate) fn base_cost_bytes() -> u64 {
        std::mem::size_of::<RumorSet>() as u64
    }

    /// Inserts a rumor; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if the rumor is outside the universe.
    // gossip-lint: allow(panic-path): page/word indices derive from the rumor < universe assertion
    pub fn insert(&mut self, rumor: RumorId) -> bool {
        let i = rumor.index();
        assert!(
            i < self.universe,
            "rumor {i} outside universe of size {}",
            self.universe
        );
        if self.len == self.universe {
            return false;
        }
        let page = (i / PAGE_BITS) as u32;
        let bit = i % PAGE_BITS;
        let cap = self.page_capacity(page);
        match self.pages.binary_search_by_key(&page, |e| e.index) {
            Err(at) => {
                let state = if cap == 1 {
                    PageState::Full
                } else {
                    let mut words = Box::new([0u64; PAGE_WORDS]);
                    words[bit / 64] |= 1 << (bit % 64);
                    PageState::Dense(words)
                };
                self.pages.insert(
                    at,
                    PageEntry {
                        index: page,
                        ones: 1,
                        state,
                    },
                );
            }
            Ok(p) => {
                let entry = &mut self.pages[p];
                match &mut entry.state {
                    PageState::Full => return false,
                    PageState::Dense(words) => {
                        let mask = 1u64 << (bit % 64);
                        if words[bit / 64] & mask != 0 {
                            return false;
                        }
                        words[bit / 64] |= mask;
                        entry.ones += 1;
                        if entry.ones == cap {
                            entry.state = PageState::Full;
                        }
                    }
                }
            }
        }
        self.len += 1;
        self.collapse_if_full();
        true
    }

    /// Returns `true` if the set contains `rumor`.
    // gossip-lint: allow(panic-path): page/word indices derive from the rumor < universe bound
    pub fn contains(&self, rumor: RumorId) -> bool {
        let i = rumor.index();
        if i >= self.universe {
            return false;
        }
        if self.len == self.universe {
            return true;
        }
        let page = (i / PAGE_BITS) as u32;
        match self.pages.binary_search_by_key(&page, |e| e.index) {
            Err(_) => false,
            Ok(p) => match &self.pages[p].state {
                PageState::Full => true,
                PageState::Dense(words) => {
                    let bit = i % PAGE_BITS;
                    words[bit / 64] & (1 << (bit % 64)) != 0
                }
            },
        }
    }

    /// Number of rumors in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if the set contains every rumor of the universe.
    pub fn is_full(&self) -> bool {
        self.len == self.universe
    }

    /// Unions `other` into `self`; returns `true` if any new rumor was added.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    // gossip-lint: allow(panic-path): page counts match by the asserted universe equality
    pub fn union_with(&mut self, other: &RumorSet) -> bool {
        assert_eq!(
            self.universe, other.universe,
            "rumor sets must share a universe"
        );
        if self.len == self.universe || other.len == 0 {
            return false;
        }
        if other.len == other.universe {
            self.pages = Vec::new();
            self.len = self.universe;
            return true;
        }
        let mut changed = false;
        for src in &other.pages {
            let cap = self.page_capacity(src.index);
            let added = match self.pages.binary_search_by_key(&src.index, |e| e.index) {
                Err(at) => {
                    self.pages.insert(
                        at,
                        PageEntry {
                            index: src.index,
                            ones: src.ones,
                            state: src.state.clone(),
                        },
                    );
                    src.ones
                }
                Ok(p) => {
                    let entry = &mut self.pages[p];
                    match (&mut entry.state, &src.state) {
                        (PageState::Full, _) => 0,
                        (PageState::Dense(_), PageState::Full) => {
                            let added = cap - entry.ones;
                            entry.state = PageState::Full;
                            entry.ones = cap;
                            added
                        }
                        (PageState::Dense(a), PageState::Dense(b)) => {
                            let mut added = 0u32;
                            for (x, y) in a.iter_mut().zip(b.iter()) {
                                added += (*y & !*x).count_ones();
                                *x |= *y;
                            }
                            entry.ones += added;
                            if entry.ones == cap {
                                entry.state = PageState::Full;
                            }
                            added
                        }
                    }
                }
            };
            if added > 0 {
                self.len += added as usize;
                changed = true;
            }
        }
        self.collapse_if_full();
        changed
    }

    /// Returns `true` if `self` is a superset of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn is_superset(&self, other: &RumorSet) -> bool {
        assert_eq!(
            self.universe, other.universe,
            "rumor sets must share a universe"
        );
        if other.len > self.len {
            return false;
        }
        if self.len == self.universe {
            return true;
        }
        // `self` is not full here, so a full `other` cannot be covered (and
        // the length check above already rejected it).
        for src in &other.pages {
            match self.pages.binary_search_by_key(&src.index, |e| e.index) {
                Err(_) => return false,
                Ok(p) => match (&self.pages[p].state, &src.state) {
                    (PageState::Full, _) => {}
                    (PageState::Dense(_), PageState::Full) => return false,
                    (PageState::Dense(a), PageState::Dense(b)) => {
                        if a.iter().zip(b.iter()).any(|(x, y)| x & y != *y) {
                            return false;
                        }
                    }
                },
            }
        }
        true
    }

    /// Iterator over the rumors present in the set, in increasing id order.
    ///
    /// Runs in `O(pages·words + len)` — it walks the non-empty pages word by
    /// word and peels set bits — so materialising a sparse set stays cheap
    /// for large universes, and a saturation-collapsed full set iterates
    /// without touching any storage at all.
    pub fn iter(&self) -> RumorIter<'_> {
        RumorIter {
            universe: self.universe,
            full: self.universe > 0 && self.len == self.universe,
            next_id: 0,
            pages: &self.pages,
            page_pos: 0,
            cur_entry: None,
            cur_base: 0,
            cur_cap: 0,
            cur_words: 0,
            word_idx: 0,
            word: 0,
        }
    }

    /// Inserts the `len` consecutive rumors `first, …, first+len-1`, pushing
    /// every *maximal run* of rumors that was not already present onto
    /// `out_new` in increasing id order.
    ///
    /// This is the word-level workhorse of the engine's interval-log merge:
    /// one run of consecutive rumor ids is unioned in `O(len/64 + new runs)`
    /// time, and a run covering a whole absent page materialises the full
    /// sentinel directly — no allocation, which is how a saturating merge
    /// fills a 131072-rumor set with 32 page flips.
    ///
    /// # Panics
    ///
    /// Panics if the run extends past the universe.
    // gossip-lint: allow(panic-path): run bounds are asserted against the universe on entry
    pub(crate) fn insert_run(&mut self, first: RumorId, len: u32, out_new: &mut Vec<RumorRun>) {
        if len == 0 {
            return;
        }
        let lo = first.index();
        let hi = lo + len as usize;
        assert!(
            hi <= self.universe,
            "run {lo}..{hi} outside universe of size {}",
            self.universe
        );
        if self.len == self.universe {
            return;
        }
        for page in (lo / PAGE_BITS) as u32..=((hi - 1) / PAGE_BITS) as u32 {
            let page_start = page as usize * PAGE_BITS;
            let cap = self.page_capacity(page);
            let a = lo.max(page_start) - page_start;
            let b = (hi - page_start).min(PAGE_BITS);
            let added = match self.pages.binary_search_by_key(&page, |e| e.index) {
                Err(at) if a == 0 && b >= cap as usize => {
                    // The run covers the whole (absent) page: full sentinel,
                    // no allocation.
                    self.pages.insert(
                        at,
                        PageEntry {
                            index: page,
                            ones: cap,
                            state: PageState::Full,
                        },
                    );
                    push_new_run(out_new, page_start, cap);
                    cap
                }
                Err(at) => {
                    let mut words = Box::new([0u64; PAGE_WORDS]);
                    for_each_word_mask(a, b - a, |w, mask| words[w] |= mask);
                    self.pages.insert(
                        at,
                        PageEntry {
                            index: page,
                            ones: (b - a) as u32,
                            state: PageState::Dense(words),
                        },
                    );
                    push_new_run(out_new, page_start + a, (b - a) as u32);
                    (b - a) as u32
                }
                Ok(p) => {
                    let entry = &mut self.pages[p];
                    match &mut entry.state {
                        PageState::Full => 0,
                        PageState::Dense(words) => {
                            let mut added = 0u32;
                            for_each_word_mask(a, b - a, |w, mask| {
                                let new = mask & !words[w];
                                words[w] |= mask;
                                added += new.count_ones();
                                push_word_new_runs(out_new, page_start + w * 64, new);
                            });
                            entry.ones += added;
                            if entry.ones == cap {
                                entry.state = PageState::Full;
                            }
                            added
                        }
                    }
                }
            };
            self.len += added as usize;
        }
        self.collapse_if_full();
    }

    /// Compatibility wrapper over [`insert_run`](Self::insert_run) that
    /// expands the new runs into individual rumor ids.
    ///
    /// # Panics
    ///
    /// Panics if the run extends past the universe.
    pub fn insert_consecutive(&mut self, first: RumorId, len: u32, out_new: &mut Vec<RumorId>) {
        let mut runs = Vec::new();
        self.insert_run(first, len, &mut runs);
        for (f, l) in runs {
            for k in 0..l {
                out_new.push(RumorId(f.0 + k));
            }
        }
    }

    /// Unions a raw dense word slice (universe layout, as used by the
    /// engine's delayed shadows) into the set, pushing every maximal run of
    /// newly inserted rumors onto `out_new` in increasing id order.
    // gossip-lint: allow(panic-path): word indices are bounded by the page capacity invariant
    pub(crate) fn union_words_collect_new_runs(
        &mut self,
        words: &[u64],
        out_new: &mut Vec<RumorRun>,
    ) {
        debug_assert_eq!(words.len(), self.universe.div_ceil(64), "universe mismatch");
        if self.len == self.universe {
            return;
        }
        for page in 0..self.universe.div_ceil(PAGE_BITS) as u32 {
            let page_start = page as usize * PAGE_BITS;
            let word_lo = page_start / 64;
            let word_hi = (word_lo + PAGE_WORDS).min(words.len());
            let src = &words[word_lo..word_hi];
            if src.iter().all(|&w| w == 0) {
                continue;
            }
            let cap = self.page_capacity(page);
            let added = match self.pages.binary_search_by_key(&page, |e| e.index) {
                Err(at) => {
                    let ones: u32 = src.iter().map(|w| w.count_ones()).sum();
                    for (w, &bits) in src.iter().enumerate() {
                        push_word_new_runs(out_new, page_start + w * 64, bits);
                    }
                    let state = if ones == cap {
                        PageState::Full
                    } else {
                        let mut owned = Box::new([0u64; PAGE_WORDS]);
                        owned[..src.len()].copy_from_slice(src);
                        PageState::Dense(owned)
                    };
                    self.pages.insert(
                        at,
                        PageEntry {
                            index: page,
                            ones,
                            state,
                        },
                    );
                    ones
                }
                Ok(p) => {
                    let entry = &mut self.pages[p];
                    match &mut entry.state {
                        PageState::Full => 0,
                        PageState::Dense(dst) => {
                            let mut added = 0u32;
                            for (w, &bits) in src.iter().enumerate() {
                                let new = bits & !dst[w];
                                dst[w] |= bits;
                                added += new.count_ones();
                                push_word_new_runs(out_new, page_start + w * 64, new);
                            }
                            entry.ones += added;
                            if entry.ones == cap {
                                entry.state = PageState::Full;
                            }
                            added
                        }
                    }
                }
            };
            self.len += added as usize;
        }
        self.collapse_if_full();
    }

    /// Fills the set to the full universe, pushing every maximal run of
    /// newly inserted rumors onto `out_new` in increasing id order, and
    /// collapses to the canonical (page-free) full representation.
    ///
    /// This is the engine's `O(pages)` "peer is saturated" merge: unioning a
    /// saturation-collapsed peer needs no shadow words and no log replay —
    /// the complement of what `self` already knows *is* the delta.
    // gossip-lint: allow(panic-path): word indices are bounded by the page capacity invariant
    pub(crate) fn insert_all(&mut self, out_new: &mut Vec<RumorRun>) {
        if self.len == self.universe {
            return;
        }
        let mut next = 0usize; // cursor into self.pages
        for page in 0..self.universe.div_ceil(PAGE_BITS) as u32 {
            let page_start = page as usize * PAGE_BITS;
            let cap = self.page_capacity(page);
            if next < self.pages.len() && self.pages[next].index == page {
                let entry = &self.pages[next];
                next += 1;
                match &entry.state {
                    PageState::Full => {}
                    PageState::Dense(words) => {
                        for (w, &bits) in words.iter().enumerate() {
                            let new = full_page_word(cap, w) & !bits;
                            push_word_new_runs(out_new, page_start + w * 64, new);
                        }
                    }
                }
            } else {
                push_new_run(out_new, page_start, cap);
            }
        }
        self.pages = Vec::new();
        self.len = self.universe;
    }

    /// Number of 64-bit words a dense shadow bitset over this universe needs.
    pub(crate) fn word_count(&self) -> usize {
        self.universe.div_ceil(64)
    }
}

/// Calls `f(word_index, mask)` for every 64-bit word overlapped by the bit
/// range `lo..lo+len`, with `mask` covering exactly the in-range bits of
/// that word.  Shared by the consecutive-run set operations so the boundary
/// arithmetic (including the `1 << 64` full-word case) lives in one place.
fn for_each_word_mask(lo: usize, len: usize, mut f: impl FnMut(usize, u64)) {
    if len == 0 {
        return;
    }
    let hi = lo + len;
    for w in lo / 64..=(hi - 1) / 64 {
        let a = lo.max(w * 64) - w * 64;
        let b = hi.min(w * 64 + 64) - w * 64;
        let mask = if b - a == 64 {
            !0u64
        } else {
            ((1u64 << (b - a)) - 1) << a
        };
        f(w, mask);
    }
}

/// Sets the bits `lo..lo+len` in a raw bitset word slice (the engine uses
/// this to replay consecutive log runs into a delayed shadow).
// gossip-lint: allow(panic-path): callers pass lo..lo+len ranges within the word slice
pub(crate) fn set_words_range(words: &mut [u64], lo: usize, len: usize) {
    for_each_word_mask(lo, len, |w, mask| words[w] |= mask);
}

/// One run of an [`AcquisitionLog`]: the entries at positions
/// `start .. next run's start` hold the consecutive rumor ids
/// `first, first + 1, …`.  The run length is implicit in the neighbor run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    /// Absolute log position of the run's first entry.
    start: u32,
    /// Rumor id of the run's first entry.
    first: u32,
}

/// A run-length-compressed, truncatable acquisition log.
///
/// Conceptually this is an append-only sequence of [`RumorId`]s — the rumors
/// a node learned, in learn order — addressed by *absolute position*.  Two
/// things make it cheap at scale:
///
/// * **Interval runs.**  Maximal stretches of *consecutive* rumor ids are
///   stored as a single 8-byte run.  Acquisition orders in dissemination
///   workloads are bursty (a merge copies its peer's runs, so runs propagate
///   and grow), and on structured families — star hubs relaying
///   `leaf 1, leaf 2, …`, clique all-to-all — whole logs collapse to a
///   handful of runs.
/// * **Prefix truncation.**  [`truncate_below`](Self::truncate_below) drops
///   runs that lie entirely below a position; reads below the truncation
///   frontier are a contract violation (the engine serves them from a delayed
///   bitset shadow instead).  Positions stay absolute across truncation, so
///   snapshots and watermarks taken earlier remain valid.
///   [`truncate_all`](Self::truncate_all) is the saturation-collapse variant:
///   it drops *every* run and releases the log's storage outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquisitionLog {
    runs: Vec<Run>,
    /// Index into `runs` of the first retained run (earlier runs are dropped
    /// lazily and compacted away once they dominate the vector).
    head: usize,
    /// Total number of entries ever appended (`==` the owning node's rumor count).
    len: u32,
    /// Absolute position of the first retained entry (`== len` when empty).
    front: u32,
}

impl AcquisitionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AcquisitionLog {
            runs: Vec::new(),
            head: 0,
            len: 0,
            front: 0,
        }
    }

    /// Creates a log seeded with the rumors of `set` in increasing id order
    /// (the canonical initial-state order; consecutive ids coalesce into runs).
    pub fn from_set(set: &RumorSet) -> Self {
        let mut log = AcquisitionLog::new();
        for rumor in set.iter() {
            log.push(rumor);
        }
        log
    }

    /// Total number of entries ever appended (including truncated ones).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Absolute position of the first retained entry: reads below this
    /// position panic in debug builds.
    pub fn front(&self) -> u32 {
        self.front
    }

    /// Number of runs currently retained (the log's live memory, 8 bytes each).
    pub fn retained_runs(&self) -> usize {
        self.runs.len() - self.head
    }

    /// End position of the retained run at `runs` index `i`.
    // gossip-lint: allow(panic-path): callers iterate i < runs.len()
    fn run_end(&self, i: usize) -> u32 {
        if i + 1 < self.runs.len() {
            self.runs[i + 1].start
        } else {
            self.len
        }
    }

    /// Appends one entry.  Returns `true` if the entry started a new run
    /// (`false` when it extended the last run — extensions are free, the run
    /// length is implicit).
    pub fn push(&mut self, rumor: RumorId) -> bool {
        self.push_run(rumor, 1)
    }

    /// Appends `len` consecutive entries `first, first+1, …` as one batch.
    /// Returns `true` if the batch started a new run (`false` when it
    /// extended the last run).  `len == 0` is a no-op returning `false`.
    // gossip-lint: allow(panic-path): the last-run index exists once the non-empty check passed
    pub fn push_run(&mut self, first: RumorId, len: u32) -> bool {
        if len == 0 {
            return false;
        }
        let pos = self.len;
        self.len += len;
        if self.head < self.runs.len() {
            let last = self.runs[self.runs.len() - 1];
            if u64::from(last.first) + u64::from(pos - last.start) == u64::from(first.0) {
                return false;
            }
        }
        self.runs.push(Run {
            start: pos,
            first: first.0,
        });
        true
    }

    /// Number of retained runs that lie entirely below `pos` — exactly what
    /// [`truncate_below`](Self::truncate_below) would reclaim.
    // gossip-lint: allow(panic-path): run indices stay below the partition point, which is <= runs.len()
    pub fn runs_entirely_below(&self, pos: u32) -> usize {
        let live = &self.runs[self.head..];
        let k = live.partition_point(|r| r.start < pos);
        if k == 0 {
            return 0;
        }
        // The k-th run (index k-1) starts below `pos` but may extend past it.
        let end = self.run_end(self.head + k - 1);
        if end <= pos {
            k
        } else {
            k - 1
        }
    }

    /// Drops every run lying entirely below `pos` and returns how many were
    /// reclaimed.  A run straddling `pos` is kept whole, so positions
    /// `>= pos` always stay readable.
    // gossip-lint: allow(panic-path): run indices stay below the partition point, which is <= runs.len()
    pub fn truncate_below(&mut self, pos: u32) -> usize {
        let mut dropped = 0usize;
        while self.head < self.runs.len() && self.run_end(self.head) <= pos {
            self.head += 1;
            dropped += 1;
        }
        self.front = if self.head < self.runs.len() {
            self.runs[self.head].start
        } else {
            self.len
        };
        // Compact once dropped runs dominate, and release oversized capacity
        // so truncation frees real memory, not just indices.
        if self.head > 32 && self.head * 2 >= self.runs.len() {
            self.runs.drain(..self.head);
            self.head = 0;
            if self.runs.capacity() > 4 * self.runs.len().max(8) {
                self.runs.shrink_to(2 * self.runs.len().max(8));
            }
        }
        dropped
    }

    /// Drops every retained run and releases the log's storage, returning
    /// how many runs were reclaimed.  The saturation-collapse path: once a
    /// node's rumor set is full and every possibly-outstanding snapshot of it
    /// covers the whole universe, the log's history can never be read again.
    /// Positions stay absolute — appends after collapse continue at `len()`.
    pub fn truncate_all(&mut self) -> usize {
        let dropped = self.retained_runs();
        self.runs = Vec::new();
        self.head = 0;
        self.front = self.len;
        dropped
    }

    /// Calls `f(first_rumor, segment_len)` for the consecutive-id segments
    /// covering positions `from..to`, in position order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `from` lies below the truncation frontier or
    /// `to` past the end.
    // gossip-lint: allow(panic-path): run indices come from partition_point over the live runs
    pub fn for_each_segment(&self, from: u32, to: u32, mut f: impl FnMut(RumorId, u32)) {
        if from >= to {
            return;
        }
        debug_assert!(
            from >= self.front,
            "reading truncated log positions ({from} < front {})",
            self.front
        );
        debug_assert!(to <= self.len, "reading past the log ({to} > {})", self.len);
        let live = &self.runs[self.head..];
        let mut i = live.partition_point(|r| r.start <= from).saturating_sub(1);
        while i < live.len() {
            let run = live[i];
            if run.start >= to {
                break;
            }
            let end = self.run_end(self.head + i);
            let s = run.start.max(from);
            let e = end.min(to);
            if s < e {
                f(RumorId(run.first + (s - run.start)), e - s);
            }
            i += 1;
        }
    }

    /// The entry at absolute position `pos` (mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is truncated or out of range.
    // gossip-lint: allow(panic-path): pos is asserted in range on entry
    pub fn get(&self, pos: u32) -> RumorId {
        assert!(pos >= self.front && pos < self.len, "position out of range");
        let live = &self.runs[self.head..];
        let i = live.partition_point(|r| r.start <= pos) - 1;
        RumorId(live[i].first + (pos - live[i].start))
    }
}

impl Default for AcquisitionLog {
    fn default() -> Self {
        AcquisitionLog::new()
    }
}

/// Iterator over the rumors of a [`RumorSet`], in increasing id order.
///
/// Produced by [`RumorSet::iter`].
#[derive(Debug, Clone)]
pub struct RumorIter<'a> {
    universe: usize,
    /// Saturation-collapsed full set: iterate ids directly, no storage.
    full: bool,
    next_id: usize,
    pages: &'a [PageEntry],
    /// Index of the next page to load.
    page_pos: usize,
    cur_entry: Option<&'a PageEntry>,
    cur_base: usize,
    cur_cap: u32,
    cur_words: usize,
    word_idx: usize,
    word: u64,
}

impl Iterator for RumorIter<'_> {
    type Item = RumorId;

    fn next(&mut self) -> Option<RumorId> {
        if self.full {
            if self.next_id < self.universe {
                let r = RumorId(self.next_id as u32);
                self.next_id += 1;
                return Some(r);
            }
            return None;
        }
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros();
                self.word &= self.word - 1;
                return Some(RumorId((self.cur_base + self.word_idx * 64) as u32 + bit));
            }
            if let Some(entry) = self.cur_entry {
                self.word_idx += 1;
                if self.word_idx < self.cur_words {
                    self.word = page_word(entry, self.word_idx, self.cur_cap);
                    continue;
                }
                self.cur_entry = None;
            }
            if self.page_pos >= self.pages.len() {
                return None;
            }
            let entry = &self.pages[self.page_pos];
            self.page_pos += 1;
            self.cur_base = entry.index as usize * PAGE_BITS;
            self.cur_cap = (self.universe - self.cur_base).min(PAGE_BITS) as u32;
            self.cur_words = (self.cur_cap as usize).div_ceil(64);
            self.word_idx = 0;
            self.word = page_word(entry, 0, self.cur_cap);
            self.cur_entry = Some(entry);
        }
    }
}

/// Word `w` of a page entry, masking full pages to their capacity.
fn page_word(entry: &PageEntry, w: usize, cap: u32) -> u64 {
    match &entry.state {
        PageState::Full => full_page_word(cap, w),
        PageState::Dense(words) => words[w],
    }
}

impl fmt::Debug for RumorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RumorSet({}/{}: ", self.len(), self.universe)?;
        f.debug_set().entries(self.iter().map(|r| r.0)).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive semantic mirror: a `RumorSet` must behave exactly like a
    /// plain boolean vector.
    fn assert_matches_naive(set: &RumorSet, naive: &[bool]) {
        assert_eq!(set.universe(), naive.len());
        assert_eq!(set.len(), naive.iter().filter(|&&b| b).count());
        let got: Vec<usize> = set.iter().map(RumorId::index).collect();
        let expected: Vec<usize> = (0..naive.len()).filter(|&i| naive[i]).collect();
        assert_eq!(got, expected);
        for (i, &want) in naive.iter().enumerate() {
            assert_eq!(set.contains(RumorId::from(i)), want, "bit {i}");
        }
    }

    #[test]
    fn singleton_and_membership() {
        let s = RumorSet::singleton(10, RumorId(3));
        assert!(s.contains(RumorId(3)));
        assert!(!s.contains(RumorId(4)));
        assert!(!s.contains(RumorId(99)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(!s.is_full());
    }

    #[test]
    fn insert_reports_novelty() {
        let mut s = RumorSet::empty(5);
        assert!(s.insert(RumorId(2)));
        assert!(!s.insert(RumorId(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_superset() {
        let mut a = RumorSet::singleton(100, RumorId(1));
        let b = RumorSet::singleton(100, RumorId(70));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(RumorId(70)));
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn full_set_detection() {
        let mut s = RumorSet::empty(3);
        for i in 0..3 {
            s.insert(RumorId(i));
        }
        assert!(s.is_full());
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![RumorId(0), RumorId(1), RumorId(2)]
        );
        // Saturation collapse: a full set holds no pages at all.
        assert_eq!(s.live_pages(), 0);
    }

    #[test]
    fn empty_universe_is_trivially_full() {
        let s = RumorSet::empty(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert!(s.iter().next().is_none());
    }

    #[test]
    fn rumor_of_node_matches_index() {
        assert_eq!(RumorId::of_node(NodeId::new(5)), RumorId(5));
        assert_eq!(RumorId::from(9usize).index(), 9);
        assert_eq!(format!("{}", RumorId(4)), "r4");
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = RumorSet::empty(4);
        s.insert(RumorId(4));
    }

    #[test]
    #[should_panic(expected = "must share a universe")]
    fn union_of_mismatched_universes_panics() {
        let mut a = RumorSet::empty(4);
        let b = RumorSet::empty(5);
        a.union_with(&b);
    }

    #[test]
    fn iter_walks_pages_in_order() {
        // Rumors spread across multiple pages, including word and page edges.
        let ids = [0usize, 1, 63, 64, 4095, 4096, 8191, 8192, 9000];
        let mut s = RumorSet::empty(9001);
        for &i in &ids {
            s.insert(RumorId::from(i));
        }
        let got: Vec<usize> = s.iter().map(RumorId::index).collect();
        assert_eq!(got, ids);
        assert!(RumorSet::empty(0).iter().next().is_none());
        assert!(RumorSet::empty(100).iter().next().is_none());
        assert_eq!(s.live_pages(), 3, "pages 0, 1, 2 are dense");
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let s = RumorSet::singleton(4, RumorId(1));
        let repr = format!("{s:?}");
        assert!(repr.contains("RumorSet"));
        assert!(repr.contains('1'));
    }

    #[test]
    fn insert_consecutive_matches_individual_inserts() {
        let mut a = RumorSet::empty(200);
        a.insert(RumorId(70));
        a.insert(RumorId(128));
        let mut b = a.clone();

        let mut new = Vec::new();
        a.insert_consecutive(RumorId(60), 80, &mut new);
        let mut expected_new = Vec::new();
        for i in 60..140u32 {
            if b.insert(RumorId(i)) {
                expected_new.push(RumorId(i));
            }
        }
        assert_eq!(a, b);
        assert_eq!(new, expected_new);
        assert!(!new.contains(&RumorId(70)));
        assert!(new.contains(&RumorId(139)));

        // Zero-length runs are a no-op.
        new.clear();
        a.insert_consecutive(RumorId(0), 0, &mut new);
        assert!(new.is_empty());
    }

    #[test]
    fn insert_run_crossing_pages_matches_individual_inserts() {
        let mut a = RumorSet::empty(3 * PAGE_BITS + 100);
        a.insert(RumorId(5000));
        let mut b = a.clone();
        let mut runs = Vec::new();
        // Spans pages 0..=3 (the last one partial).
        a.insert_run(
            RumorId(100),
            (3 * PAGE_BITS + 100 - 100 - 7) as u32,
            &mut runs,
        );
        let mut naive = vec![false; 3 * PAGE_BITS + 100];
        naive[5000] = true;
        for (i, slot) in naive
            .iter_mut()
            .enumerate()
            .take(3 * PAGE_BITS + 100 - 7)
            .skip(100)
        {
            *slot = true;
            b.insert(RumorId::from(i));
        }
        assert_eq!(a, b);
        assert_matches_naive(&a, &naive);
        // The new runs tile exactly the inserted range minus the old bit.
        let expanded: Vec<usize> = runs
            .iter()
            .flat_map(|&(f, l)| f.index()..f.index() + l as usize)
            .collect();
        let expected: Vec<usize> = (100..3 * PAGE_BITS + 100 - 7)
            .filter(|&i| i != 5000)
            .collect();
        assert_eq!(expanded, expected);
        // Whole interior pages became sentinel pages, not allocations.
        assert!(a.live_pages() <= 2, "only boundary pages may stay dense");
    }

    #[test]
    fn full_page_runs_do_not_allocate() {
        let mut s = RumorSet::empty(2 * PAGE_BITS);
        let mut runs = Vec::new();
        s.insert_run(RumorId(0), PAGE_BITS as u32, &mut runs);
        assert_eq!(s.live_pages(), 0, "a whole-page run is a sentinel page");
        assert_eq!(s.len(), PAGE_BITS);
        assert_eq!(runs, vec![(RumorId(0), PAGE_BITS as u32)]);
        s.insert_run(RumorId(PAGE_BITS as u32), PAGE_BITS as u32, &mut runs);
        assert!(s.is_full());
        assert_eq!(s.live_pages(), 0, "full sets collapse to zero pages");
    }

    #[test]
    fn equality_is_canonical_across_construction_orders() {
        // The same contents must compare equal no matter how they were built:
        // bit-by-bit, by run, or via union.
        let n = PAGE_BITS + 10;
        let mut by_bits = RumorSet::empty(n);
        for i in 0..n {
            by_bits.insert(RumorId::from(i));
        }
        let mut by_run = RumorSet::empty(n);
        by_run.insert_run(RumorId(0), n as u32, &mut Vec::new());
        assert_eq!(by_bits, by_run);
        assert!(by_bits.is_full());
        assert_eq!(by_bits.live_pages(), 0);

        let mut partial_bits = RumorSet::empty(n);
        for i in 0..PAGE_BITS {
            partial_bits.insert(RumorId::from(i));
        }
        let mut partial_run = RumorSet::empty(n);
        partial_run.insert_run(RumorId(0), PAGE_BITS as u32, &mut Vec::new());
        assert_eq!(partial_bits, partial_run, "full page == sentinel page");
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_consecutive_past_universe_panics() {
        let mut s = RumorSet::empty(10);
        s.insert_consecutive(RumorId(8), 3, &mut Vec::new());
    }

    #[test]
    fn union_words_collects_exactly_the_new_runs() {
        let n = PAGE_BITS + 130;
        let mut dst = RumorSet::singleton(n, RumorId(5));
        let mut shadow = vec![0u64; n.div_ceil(64)];
        set_words_range(&mut shadow, 0, 2); // 0, 1
        set_words_range(&mut shadow, 5, 1); // already known
        set_words_range(&mut shadow, 64, 1); // 64
        set_words_range(&mut shadow, PAGE_BITS + 129, 1); // second page
        let mut new = Vec::new();
        dst.union_words_collect_new_runs(&shadow, &mut new);
        assert_eq!(
            new,
            vec![
                (RumorId(0), 2),
                (RumorId(64), 1),
                (RumorId(PAGE_BITS as u32 + 129), 1)
            ]
        );
        assert_eq!(dst.len(), 5);
        new.clear();
        dst.union_words_collect_new_runs(&shadow, &mut new);
        assert!(new.is_empty(), "second union adds nothing");
    }

    #[test]
    fn insert_all_emits_the_complement_and_collapses() {
        let n = PAGE_BITS + 50;
        let mut s = RumorSet::empty(n);
        s.insert(RumorId(3));
        s.insert_run(RumorId(0), PAGE_BITS as u32, &mut Vec::new()); // page 0 full
        s.insert(RumorId(PAGE_BITS as u32 + 10));
        let mut new = Vec::new();
        s.insert_all(&mut new);
        assert!(s.is_full());
        assert_eq!(s.live_pages(), 0);
        let expanded: Vec<usize> = new
            .iter()
            .flat_map(|&(f, l)| f.index()..f.index() + l as usize)
            .collect();
        let expected: Vec<usize> = (PAGE_BITS..n).filter(|&i| i != PAGE_BITS + 10).collect();
        assert_eq!(expanded, expected);
    }

    #[test]
    fn union_with_full_source_and_randomish_mix_matches_naive() {
        let n = 2 * PAGE_BITS + 77;
        let mut naive_a = vec![false; n];
        let mut naive_b = vec![false; n];
        let mut a = RumorSet::empty(n);
        let mut b = RumorSet::empty(n);
        // Deterministic scatter over both sets (multiplicative hashing).
        for k in 0..800usize {
            let i = (k.wrapping_mul(2654435761)) % n;
            let j = (k.wrapping_mul(40503) + 17) % n;
            a.insert(RumorId::from(i));
            naive_a[i] = true;
            b.insert(RumorId::from(j));
            naive_b[j] = true;
        }
        assert_matches_naive(&a, &naive_a);
        assert_matches_naive(&b, &naive_b);
        let mut merged = a.clone();
        assert!(merged.union_with(&b));
        let naive_merged: Vec<bool> = (0..n).map(|i| naive_a[i] || naive_b[i]).collect();
        assert_matches_naive(&merged, &naive_merged);
        assert!(merged.is_superset(&a));
        assert!(merged.is_superset(&b));
        assert!(!a.is_superset(&b));

        // A full source saturates the destination in one step.
        let mut full = RumorSet::empty(n);
        full.insert_run(RumorId(0), n as u32, &mut Vec::new());
        assert!(full.is_full());
        let mut c = a.clone();
        assert!(c.union_with(&full));
        assert!(c.is_full());
        assert_eq!(c, full);
        assert!(!c.union_with(&b), "full destinations absorb nothing");
    }

    #[test]
    fn set_words_range_sets_exactly_the_range() {
        let mut words = vec![0u64; 4];
        set_words_range(&mut words, 60, 10); // spans the 0/1 word boundary
        set_words_range(&mut words, 128, 64); // a full word
        set_words_range(&mut words, 0, 0); // no-op
        let mut expected = vec![0u64; 4];
        for i in 60..70 {
            expected[i / 64] |= 1 << (i % 64);
        }
        for i in 128..192 {
            expected[i / 64] |= 1 << (i % 64);
        }
        assert_eq!(words, expected);
    }

    #[test]
    fn log_coalesces_consecutive_ids_into_runs() {
        let mut log = AcquisitionLog::new();
        for i in [7u32, 8, 9, 10, 3, 4, 42] {
            log.push(RumorId(i));
        }
        assert_eq!(log.len(), 7);
        assert_eq!(log.retained_runs(), 3, "7..=10, 3..=4, 42");
        let entries: Vec<u32> = (0..7).map(|p| log.get(p).0).collect();
        assert_eq!(entries, vec![7, 8, 9, 10, 3, 4, 42]);
    }

    #[test]
    fn log_push_run_extends_and_starts_runs_like_pushes() {
        let mut by_push = AcquisitionLog::new();
        let mut by_run = AcquisitionLog::new();
        // (first, len) batches, some contiguous with the previous one.
        for &(first, len) in &[(10u32, 3u32), (13, 4), (50, 2), (52, 1), (0, 5)] {
            for k in 0..len {
                by_push.push(RumorId(first + k));
            }
            by_run.push_run(RumorId(first), len);
        }
        assert_eq!(by_push, by_run);
        assert_eq!(by_run.retained_runs(), 3, "10..=16, 50..=52, 0..=4");
        assert!(!by_run.push_run(RumorId(99), 0), "empty batch is a no-op");
        assert_eq!(by_push.len(), by_run.len());
    }

    #[test]
    fn log_from_set_compresses_dense_sets() {
        let mut set = RumorSet::empty(1000);
        for i in 0..1000 {
            if i != 500 {
                set.insert(RumorId(i));
            }
        }
        let log = AcquisitionLog::from_set(&set);
        assert_eq!(log.len(), 999);
        assert_eq!(log.retained_runs(), 2, "0..500 and 501..1000");
        assert_eq!(log.get(0), RumorId(0));
        assert_eq!(log.get(500), RumorId(501));
    }

    #[test]
    fn log_segments_cover_arbitrary_ranges() {
        let mut log = AcquisitionLog::new();
        for i in [10u32, 11, 12, 50, 51, 90] {
            log.push(RumorId(i));
        }
        let collect = |from, to| {
            let mut out = Vec::new();
            log.for_each_segment(from, to, |first, len| out.push((first.0, len)));
            out
        };
        assert_eq!(collect(0, 6), vec![(10, 3), (50, 2), (90, 1)]);
        assert_eq!(collect(1, 5), vec![(11, 2), (50, 2)]);
        assert_eq!(collect(4, 4), vec![]);
        assert_eq!(collect(5, 6), vec![(90, 1)]);
    }

    #[test]
    fn log_truncation_reclaims_whole_runs_and_keeps_positions_absolute() {
        let mut log = AcquisitionLog::new();
        for i in [10u32, 11, 12, 50, 51, 90] {
            log.push(RumorId(i));
        }
        assert_eq!(log.runs_entirely_below(3), 1);
        assert_eq!(log.runs_entirely_below(4), 1, "run 50..52 straddles pos 4");
        assert_eq!(log.runs_entirely_below(5), 2);
        assert_eq!(log.runs_entirely_below(6), 3);

        assert_eq!(log.truncate_below(4), 1);
        assert_eq!(log.front(), 3, "straddling run kept whole");
        assert_eq!(log.retained_runs(), 2);
        // Absolute positions survive truncation.
        assert_eq!(log.get(4), RumorId(51));
        let mut out = Vec::new();
        log.for_each_segment(4, 6, |first, len| out.push((first.0, len)));
        assert_eq!(out, vec![(51, 1), (90, 1)]);

        assert_eq!(log.truncate_below(6), 2);
        assert_eq!(log.retained_runs(), 0);
        assert_eq!(log.front(), 6);
        // Appending after full truncation starts a fresh run.
        assert!(log.push(RumorId(91)));
        assert_eq!(log.get(6), RumorId(91));
        assert_eq!(log.len(), 7);
    }

    #[test]
    fn log_truncate_all_frees_everything_and_keeps_positions() {
        let mut log = AcquisitionLog::new();
        for i in 0..100u32 {
            log.push(RumorId(2 * i)); // 100 singleton runs
        }
        assert_eq!(log.truncate_all(), 100);
        assert_eq!(log.retained_runs(), 0);
        assert_eq!(log.front(), 100);
        assert_eq!(log.len(), 100);
        // Appends continue at the absolute position after the collapse.
        assert!(log.push_run(RumorId(500), 3));
        assert_eq!(log.get(100), RumorId(500));
        assert_eq!(log.get(102), RumorId(502));
        assert_eq!(log.truncate_all(), 1);
        assert_eq!(log.front(), 103);
    }

    #[test]
    fn log_compaction_frees_dropped_runs() {
        let mut log = AcquisitionLog::new();
        // 200 singleton runs (even ids never coalesce).
        for i in 0..200u32 {
            log.push(RumorId(2 * i));
        }
        assert_eq!(log.retained_runs(), 200);
        let dropped = log.truncate_below(150);
        assert_eq!(dropped, 150);
        assert_eq!(log.retained_runs(), 50);
        // Internal compaction must not disturb reads.
        assert_eq!(log.get(150), RumorId(300));
        assert_eq!(log.get(199), RumorId(398));
        assert_eq!(AcquisitionLog::default().len(), 0);
    }
}
