//! Deterministic fault injection: crash-stop churn, link cuts, message loss.
//!
//! A [`FaultPlan`] is a *schedule* of fault events — crash-stop node
//! failures (with optional amnesiac rejoin), fail-stop link cuts, and a
//! per-exchange message-loss rate — attached to a simulation through
//! [`SimConfig::faults`](crate::SimConfig::faults).  The plan is pure data:
//! both the snapshot-free engine and the reference engine interpret the same
//! schedule with the same round-start semantics, which is what lets the
//! `fault_equivalence` suite pin the fault path byte-identical across
//! engines.
//!
//! # Semantics
//!
//! All events scheduled for round `r` are applied **at the very start of
//! round `r`**, before that round's deliveries: an exchange that would have
//! completed at `r` but is incident to a node crashing at `r` (or rides an
//! edge cut at `r`) is *cancelled*, never delivered.  Within one round,
//! events apply in schedule order.  Detailed per-event semantics:
//!
//! * **Crash** (crash-stop): the node stops initiating and responding, all
//!   its in-flight exchanges are cancelled (surviving initiators observe the
//!   slot freed the same round), and it is excluded from every termination
//!   condition.  Its rumor set is frozen as-is — rumors only it knew are
//!   *stranded* until it rejoins.  Crashing a dead node is a no-op.
//! * **Rejoin** (amnesiac): the node comes back with *only its own rumor*,
//!   an empty acquisition history, and no discovered latencies — peers must
//!   re-send everything, so every per-edge merge watermark touching the node
//!   is invalidated.  Rejoining an alive node is a no-op.
//! * **Link cut** (fail-stop, permanent): the edge stops carrying exchanges
//!   forever; in-flight exchanges on it are cancelled.  Cutting a cut edge
//!   is a no-op.
//! * **Message loss**: each *accepted* initiation is lost independently with
//!   probability `rate_ppm / 1_000_000`, drawn from a dedicated
//!   [`SmallRng`] stream (seeded by `loss_seed`) so the protocol's own RNG
//!   stream is untouched.  A lost exchange occupies the initiator's slot for
//!   the edge's full latency and then times out silently: no merge, no
//!   latency discovery, no `on_exchange` callback.
//!
//! Events scheduled at or beyond the round the run stops are never applied;
//! [`FaultReport`](crate::FaultReport) counts what was actually injected.

use gossip_graph::{AliveView, EdgeId, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::rumor::RumorSet;

/// One scheduled fault (see the module docs for exact semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash-stop failure of a node.
    Crash(NodeId),
    /// Amnesiac recovery of a crashed node.
    Rejoin(NodeId),
    /// Permanent fail-stop cut of a link.
    CutLink(EdgeId),
}

/// A deterministic schedule of fault events plus a message-loss rate.
///
/// Build one explicitly with [`crash`](Self::crash) /
/// [`rejoin`](Self::rejoin) / [`cut_link`](Self::cut_link) /
/// [`message_loss`](Self::message_loss), or derive one from a seed with
/// [`random_churn`](Self::random_churn).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// `(round, event)` pairs, sorted by round; same-round events keep
    /// insertion order.
    pub(crate) events: Vec<(u64, FaultEvent)>,
    /// Per-exchange loss probability in parts per million (0 = reliable).
    pub(crate) loss_rate_ppm: u32,
    /// Seed of the dedicated loss RNG stream.
    pub(crate) loss_seed: u64,
}

impl FaultPlan {
    /// An empty plan: no faults, reliable links.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a crash-stop failure of `node` at the start of `round`.
    pub fn crash(self, round: u64, node: NodeId) -> Self {
        self.push(round, FaultEvent::Crash(node))
    }

    /// Schedules an amnesiac rejoin of `node` at the start of `round`.
    pub fn rejoin(self, round: u64, node: NodeId) -> Self {
        self.push(round, FaultEvent::Rejoin(node))
    }

    /// Schedules a permanent cut of `edge` at the start of `round`.
    pub fn cut_link(self, round: u64, edge: EdgeId) -> Self {
        self.push(round, FaultEvent::CutLink(edge))
    }

    /// Sets the per-exchange message-loss rate (parts per million) and the
    /// seed of the dedicated loss RNG stream.
    pub fn message_loss(mut self, rate_ppm: u32, seed: u64) -> Self {
        assert!(rate_ppm <= 1_000_000, "loss rate is at most 1.0 (ppm)");
        self.loss_rate_ppm = rate_ppm;
        self.loss_seed = seed;
        self
    }

    /// Derives a churn schedule from a seed: `spec.crash_permille` ‰ of the
    /// nodes crash at rounds drawn uniformly from `spec.window` (each
    /// optionally rejoining `spec.rejoin_after` rounds later),
    /// `spec.cut_permille` ‰ of the edges are cut in the same window, and
    /// exchanges are lost at `spec.loss_ppm` (loss stream seeded with
    /// `seed ^ 0x6C05`).  At least one node always survives the scheduled
    /// crashes.  The result depends only on `(graph shape, seed, spec)`.
    // gossip-lint: allow(panic-path): Fisher–Yates indices k..n (resp. k..m) stay below the vec lengths n and m by construction
    pub fn random_churn(graph: &Graph, seed: u64, spec: &ChurnSpec) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = graph.node_count();
        let m = graph.edge_count();
        let (lo, hi) = spec.window;
        let draw_round = |rng: &mut SmallRng| {
            if hi > lo {
                rng.gen_range(lo..=hi)
            } else {
                lo
            }
        };
        let crashes = (n * spec.crash_permille as usize / 1000).min(n.saturating_sub(1));
        let cuts = m * spec.cut_permille as usize / 1000;
        let mut plan = FaultPlan::new();
        // Partial Fisher–Yates: the first `crashes` entries of `nodes` end up
        // a uniform sample without replacement.
        let mut nodes: Vec<u32> = (0..n as u32).collect();
        for k in 0..crashes {
            let j = rng.gen_range(k..n);
            nodes.swap(k, j);
            let node = NodeId::new(nodes[k] as usize);
            let at = draw_round(&mut rng);
            plan = plan.crash(at, node);
            if let Some(delta) = spec.rejoin_after {
                plan = plan.rejoin(at + delta, node);
            }
        }
        let mut edges: Vec<u32> = (0..m as u32).collect();
        for k in 0..cuts {
            let j = rng.gen_range(k..m);
            edges.swap(k, j);
            plan = plan.cut_link(draw_round(&mut rng), EdgeId::new(edges[k] as usize));
        }
        if spec.loss_ppm > 0 {
            plan = plan.message_loss(spec.loss_ppm, seed ^ 0x6C05);
        }
        plan
    }

    /// The scheduled `(round, event)` pairs, sorted by round.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// Whether the plan injects nothing at all.
    pub fn is_inert(&self) -> bool {
        self.events.is_empty() && self.loss_rate_ppm == 0
    }

    /// The loss RNG for one run, if the plan has a nonzero loss rate,
    /// paired with the rate in parts per million.
    pub(crate) fn loss_stream(&self) -> Option<(SmallRng, u32)> {
        (self.loss_rate_ppm > 0)
            .then(|| (SmallRng::seed_from_u64(self.loss_seed), self.loss_rate_ppm))
    }

    fn push(mut self, round: u64, event: FaultEvent) -> Self {
        self.events.push((round, event));
        // Stable: same-round events keep their insertion order, which is the
        // order both engines apply them in.
        self.events.sort_by_key(|&(r, _)| r);
        self
    }
}

/// Parameters of a seed-derived churn schedule
/// ([`FaultPlan::random_churn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Fraction of nodes to crash, in permille (at least one node survives).
    pub crash_permille: u16,
    /// Rounds after its crash at which each crashed node rejoins
    /// (amnesiac); `None` = crashed nodes stay down.
    pub rejoin_after: Option<u64>,
    /// Fraction of edges to cut, in permille.
    pub cut_permille: u16,
    /// Per-exchange message-loss rate, in parts per million.
    pub loss_ppm: u32,
    /// Inclusive round window fault rounds are drawn from.
    pub window: (u64, u64),
}

/// One draw of the dedicated loss stream: whether the next accepted
/// initiation is lost in transit.  Both engines call this at the same
/// points (accepted initiations, in node order), which keeps the stream —
/// and therefore every report — aligned between them.
pub(crate) fn draw_loss(stream: &mut Option<(SmallRng, u32)>) -> bool {
    match stream {
        Some((rng, ppm)) => rng.gen_range(0u32..1_000_000) < *ppm,
        None => false,
    }
}

/// Rumors no *alive* node knows: the size of the universe minus the union
/// of the alive nodes' rumor sets (0 when every rumor survives somewhere).
// gossip-lint: allow(panic-path): `words` is sized ceil(universe/64) and rumor indices are below the shared universe by construction
pub(crate) fn stranded_rumors(rumors: &[RumorSet], alive: &AliveView) -> u64 {
    let universe = rumors.first().map_or(0, RumorSet::universe);
    if universe == 0 {
        return 0;
    }
    let mut words = vec![0u64; universe.div_ceil(64)];
    let mut known = 0usize;
    for (i, set) in rumors.iter().enumerate() {
        if !alive.is_node_alive(NodeId::new(i)) {
            continue;
        }
        if set.is_full() {
            return 0;
        }
        for r in set.iter() {
            let (w, b) = (r.index() / 64, r.index() % 64);
            if words[w] & (1 << b) == 0 {
                words[w] |= 1 << b;
                known += 1;
            }
        }
        if known == universe {
            return 0;
        }
    }
    (universe - known) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn builder_sorts_by_round_and_keeps_same_round_order() {
        let plan = FaultPlan::new()
            .crash(9, NodeId::new(1))
            .cut_link(2, EdgeId::new(0))
            .rejoin(9, NodeId::new(1))
            .crash(2, NodeId::new(0));
        let rounds: Vec<u64> = plan.events().iter().map(|&(r, _)| r).collect();
        assert_eq!(rounds, vec![2, 2, 9, 9]);
        // Same-round order is insertion order: the cut was scheduled before
        // the crash at round 2, the crash before the rejoin at round 9.
        assert_eq!(plan.events()[0].1, FaultEvent::CutLink(EdgeId::new(0)));
        assert_eq!(plan.events()[1].1, FaultEvent::Crash(NodeId::new(0)));
        assert_eq!(plan.events()[2].1, FaultEvent::Crash(NodeId::new(1)));
        assert_eq!(plan.events()[3].1, FaultEvent::Rejoin(NodeId::new(1)));
    }

    #[test]
    fn random_churn_is_deterministic_and_bounded() {
        let g = generators::clique(20, 1).unwrap();
        let spec = ChurnSpec {
            crash_permille: 250,
            rejoin_after: Some(7),
            cut_permille: 100,
            loss_ppm: 50_000,
            window: (1, 10),
        };
        let a = FaultPlan::random_churn(&g, 42, &spec);
        let b = FaultPlan::random_churn(&g, 42, &spec);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::random_churn(&g, 43, &spec);
        assert_ne!(a, c, "different seed, different plan");

        let crashes = a
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Crash(_)))
            .count();
        let rejoins = a
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Rejoin(_)))
            .count();
        assert_eq!(crashes, 5, "250 permille of 20 nodes");
        assert_eq!(rejoins, crashes);
        assert!(a
            .events()
            .iter()
            .all(|&(r, ref e)| matches!(e, FaultEvent::Rejoin(_)) || (1..=10).contains(&r)));
        assert!(!a.is_inert());
        assert!(FaultPlan::new().is_inert());
    }

    #[test]
    fn churn_never_crashes_every_node() {
        let g = generators::path(2, 1).unwrap();
        let spec = ChurnSpec {
            crash_permille: 1000,
            rejoin_after: None,
            cut_permille: 0,
            loss_ppm: 0,
            window: (0, 0),
        };
        let plan = FaultPlan::random_churn(&g, 1, &spec);
        let crashes = plan
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Crash(_)))
            .count();
        assert_eq!(crashes, 1, "one of two nodes must survive");
    }
}
