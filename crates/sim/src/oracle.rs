//! The mid-size oracle: dense-bitset snapshot semantics, `O(n · rounds)`.
//!
//! [`OracleSimulation`] replays the same protocol semantics as
//! [`crate::reference::ReferenceSimulation`] — snapshot both endpoints at
//! initiation, deliver after the edge latency, merge the peer's snapshot —
//! but stores every rumor state as one flat dense bitset row (`universe /
//! 64` words per node).  There are no interval logs, no shadows, no
//! watermarks and no paged sets anywhere: a snapshot is a `memcpy` of one
//! row and a merge is a word-wise OR, so the oracle stays fast well past the
//! reference engine's toy sizes and lets the `engine_equivalence` property
//! tests cross 10³–10⁴ nodes.
//!
//! Like the reference engine it draws each node's per-round RNG from
//! [`decision_rng`]`(seed, round, node)`, keeping protocol decisions
//! byte-aligned with the rewritten engine at any thread count.  Reports
//! compare via [`RunReport::semantics`](crate::RunReport::semantics) (the
//! oracle reports no memory counters).
//!
//! This module is exported for the test suites and benchmarks; it is not
//! part of the supported API surface.

use std::collections::HashMap;

use gossip_graph::{AliveView, EdgeId, Graph, Latency, NodeId};

use crate::engine::{
    decision_rng, ExchangeEvent, ExchangeMode, LatencyOracle, NodeView, OracleSource, Protocol,
    SimConfig, Termination,
};
use crate::fault::{self, FaultEvent, FaultPlan};
use crate::report::{FaultReport, RunReport};
use crate::rumor::{RumorId, RumorSet};

struct InFlight {
    initiator: NodeId,
    responder: NodeId,
    edge: EdgeId,
    completes_at: u64,
    /// Dense snapshot of the initiator's row at initiation time.
    initiator_snapshot: Vec<u64>,
    /// Dense snapshot of the responder's row at initiation time.
    responder_snapshot: Vec<u64>,
    /// Lost in transit: times out at `completes_at` without delivering.
    lost: bool,
}

/// The dense-bitset semantic oracle (see the module docs).
pub struct OracleSimulation<'g> {
    graph: &'g Graph,
    config: SimConfig,
    /// Every rumor in `0..universe`, shared by all nodes.
    universe: usize,
    /// Words per dense row.
    stride: usize,
    /// Node `i`'s rumor state is `rows[i * stride .. (i + 1) * stride]`.
    rows: Vec<u64>,
    /// Paged mirror of `rows`, maintained bit for bit: protocols observe
    /// [`NodeView::rumors`] as a [`RumorSet`], and the final states must be
    /// comparable against the engine's.
    sets: Vec<RumorSet>,
    /// Incremental popcount of each row (avoids termination re-scans).
    counts: Vec<usize>,
}

impl<'g> OracleSimulation<'g> {
    /// Creates an oracle where node `i` initially knows exactly rumor `i`.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        let n = graph.node_count();
        let initial = (0..n)
            .map(|i| RumorSet::singleton(n, RumorId::from(i)))
            .collect();
        Self::with_rumors(graph, config, initial)
    }

    /// Creates an oracle with explicitly provided initial rumor sets.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the node count or the sets do
    /// not share one universe (the dense rows share a single stride).
    pub fn with_rumors(graph: &'g Graph, config: SimConfig, initial: Vec<RumorSet>) -> Self {
        let n = graph.node_count();
        assert_eq!(initial.len(), n, "one rumor set per node is required");
        let universe = initial.first().map_or(0, RumorSet::universe);
        assert!(
            initial.iter().all(|s| s.universe() == universe),
            "dense oracle rows require a shared rumor universe"
        );
        let stride = universe.div_ceil(64);
        let mut rows = vec![0u64; n * stride];
        let counts = initial.iter().map(RumorSet::len).collect();
        for (i, set) in initial.iter().enumerate() {
            let row = &mut rows[i * stride..(i + 1) * stride];
            for rumor in set.iter() {
                row[rumor.index() / 64] |= 1 << (rumor.index() % 64);
            }
        }
        OracleSimulation {
            graph,
            config,
            universe,
            stride,
            rows,
            sets: initial,
            counts,
        }
    }

    /// Read access to the current rumor sets (indexed by node).
    pub fn rumor_sets(&self) -> &[RumorSet] {
        &self.sets
    }

    /// Consumes the oracle and returns the rumor sets (after a run).
    pub fn into_rumor_sets(self) -> Vec<RumorSet> {
        self.sets
    }

    /// Merges the dense `snapshot` into node `dst`, keeping the row, the
    /// paged mirror and the popcount in sync.  Returns `true` if anything
    /// new arrived.
    // gossip-lint: allow(panic-path): rows/sets/counts are sized n at construction; node ids are dense
    fn merge_snapshot(&mut self, dst: NodeId, snapshot: &[u64]) -> bool {
        let i = dst.index();
        let row = &mut self.rows[i * self.stride..(i + 1) * self.stride];
        let mut changed = false;
        for (w, (word, &snap)) in row.iter_mut().zip(snapshot).enumerate() {
            let new = snap & !*word;
            if new == 0 {
                continue;
            }
            changed = true;
            *word |= new;
            self.counts[i] += new.count_ones() as usize;
            let mut bits = new;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.sets[i].insert(RumorId::from(w * 64 + b));
            }
        }
        changed
    }

    /// Runs `protocol` with snapshot-at-initiation semantics over the dense
    /// rows; the structure is a line-for-line port of
    /// [`ReferenceSimulation::run`](crate::reference::ReferenceSimulation::run).
    // gossip-lint: allow(panic-path): node/edge indices come from the graph's own CSR bounds
    pub fn run<P: Protocol>(&mut self, protocol: &mut P) -> RunReport {
        let n = self.graph.node_count();
        let stride = self.stride;
        let mut in_flight: Vec<InFlight> = Vec::new();
        // gossip-lint: allow(unordered-iter): keyed inserts and `get` only, never iterated
        let mut discovered: Vec<HashMap<EdgeId, Latency>> = vec![HashMap::new(); n];
        let mut pending_own = vec![0usize; n];
        let mut activations: u64 = 0;
        let mut rejections: u64 = 0;
        let mut informed_times: Vec<Option<u64>> = match self.config.tracked_rumor {
            Some(r) => self
                .sets
                .iter()
                .map(|s| if s.contains(r) { Some(0) } else { None })
                .collect(),
            None => Vec::new(),
        };

        let fault_plan = self.config.faults.clone();
        let fault_events: &[(u64, FaultEvent)] = match &fault_plan {
            Some(plan) => plan.events(),
            None => &[],
        };
        let mut fault_cursor = 0usize;
        let mut loss = fault_plan.as_ref().and_then(FaultPlan::loss_stream);
        let mut alive: Option<AliveView> = fault_plan.as_ref().map(|_| AliveView::new(self.graph));
        let (mut crashes, mut rejoins, mut links_cut) = (0u64, 0u64, 0u64);
        let (mut cancelled, mut lost_count) = (0u64, 0u64);
        let mut pending_recovery: Vec<(usize, u64)> = Vec::new();
        let mut recovery_latency: Option<u64> = None;
        let recovery_target: Option<RumorId> =
            self.config.tracked_rumor.or(match self.config.termination {
                Termination::AllKnowRumorOf(source) => Some(RumorId::of_node(source)),
                _ => None,
            });
        let note_recovery = |latency: u64, agg: &mut Option<u64>| {
            *agg = Some(agg.map_or(latency, |cur| cur.max(latency)));
        };

        let mut round: u64 = 0;
        let mut completed = self.is_done(
            &self.config.termination,
            0,
            protocol,
            &in_flight,
            alive.as_ref(),
        );

        while !completed && round < self.config.max_rounds {
            // 0. Apply fault events scheduled for this round, before this
            //    round's deliveries.
            while fault_events
                .get(fault_cursor)
                .is_some_and(|&(r, _)| r <= round)
            {
                let (_, event) = fault_events[fault_cursor];
                fault_cursor += 1;
                let av = alive.as_mut().expect("fault events imply an alive view");
                match event {
                    FaultEvent::Crash(v) => {
                        if !av.kill_node(self.graph, v) {
                            continue; // already dead: uncounted no-op
                        }
                        crashes += 1;
                        in_flight.retain(|ex| {
                            if ex.initiator != v && ex.responder != v {
                                return true;
                            }
                            cancelled += 1;
                            if ex.initiator != v {
                                pending_own[ex.initiator.index()] =
                                    pending_own[ex.initiator.index()].saturating_sub(1);
                            }
                            false
                        });
                        pending_own[v.index()] = 0;
                        if let Some(pos) =
                            pending_recovery.iter().position(|&(i, _)| i == v.index())
                        {
                            pending_recovery.swap_remove(pos);
                        }
                    }
                    FaultEvent::Rejoin(v) => {
                        if !av.revive_node(self.graph, v) {
                            continue; // already alive: uncounted no-op
                        }
                        rejoins += 1;
                        // Amnesiac restart: only its own rumor, no history,
                        // no discovered latencies.
                        let i = v.index();
                        self.rows[i * stride..(i + 1) * stride].fill(0);
                        self.rows[i * stride + v.index() / 64] |= 1 << (v.index() % 64);
                        self.sets[i] = RumorSet::singleton(self.universe, RumorId::of_node(v));
                        self.counts[i] = 1;
                        discovered[i].clear();
                        if let Some(r) = self.config.tracked_rumor {
                            if informed_times[i].is_none() && self.sets[i].contains(r) {
                                informed_times[i] = Some(round);
                            }
                        }
                        let recovered = match recovery_target {
                            Some(r) => self.sets[i].contains(r),
                            None => self.sets[i].is_full(),
                        };
                        if recovered {
                            note_recovery(0, &mut recovery_latency);
                        } else {
                            pending_recovery.push((i, round));
                        }
                    }
                    FaultEvent::CutLink(e) => {
                        if !av.cut_edge(self.graph, e) {
                            continue; // already cut: uncounted no-op
                        }
                        links_cut += 1;
                        in_flight.retain(|ex| {
                            if ex.edge != e {
                                return true;
                            }
                            cancelled += 1;
                            pending_own[ex.initiator.index()] =
                                pending_own[ex.initiator.index()].saturating_sub(1);
                            false
                        });
                    }
                }
            }

            // 1. Deliver exchanges completing at the start of this round.
            let mut completions: Vec<InFlight> = Vec::new();
            in_flight.retain_mut(|ex| {
                if ex.completes_at == round {
                    completions.push(InFlight {
                        initiator: ex.initiator,
                        responder: ex.responder,
                        edge: ex.edge,
                        completes_at: ex.completes_at,
                        initiator_snapshot: std::mem::take(&mut ex.initiator_snapshot),
                        responder_snapshot: std::mem::take(&mut ex.responder_snapshot),
                        lost: ex.lost,
                    });
                    false
                } else {
                    true
                }
            });
            for ex in completions {
                let latency = self.graph.latency(ex.edge);
                pending_own[ex.initiator.index()] =
                    pending_own[ex.initiator.index()].saturating_sub(1);
                if ex.lost {
                    // Timed out in transit: no merge, no latency discovery,
                    // no `on_exchange`.
                    lost_count += 1;
                    continue;
                }
                // Both endpoints merge the peer's snapshot taken at initiation.
                self.merge_snapshot(ex.initiator, &ex.responder_snapshot);
                self.merge_snapshot(ex.responder, &ex.initiator_snapshot);
                discovered[ex.initiator.index()].insert(ex.edge, latency);
                discovered[ex.responder.index()].insert(ex.edge, latency);
                if let Some(r) = self.config.tracked_rumor {
                    for endpoint in [ex.initiator, ex.responder] {
                        if informed_times[endpoint.index()].is_none()
                            && self.sets[endpoint.index()].contains(r)
                        {
                            informed_times[endpoint.index()] = Some(round);
                        }
                    }
                }
                if !pending_recovery.is_empty() {
                    for endpoint in [ex.initiator, ex.responder] {
                        let i = endpoint.index();
                        if let Some(pos) = pending_recovery.iter().position(|&(v, _)| v == i) {
                            let recovered = match recovery_target {
                                Some(r) => self.sets[i].contains(r),
                                None => self.sets[i].is_full(),
                            };
                            if recovered {
                                let (_, since) = pending_recovery.swap_remove(pos);
                                note_recovery(round - since, &mut recovery_latency);
                            }
                        }
                    }
                }
                for (node, here) in [(ex.initiator, true), (ex.responder, false)] {
                    protocol.on_exchange(
                        node,
                        &ExchangeEvent {
                            peer: if here { ex.responder } else { ex.initiator },
                            edge: ex.edge,
                            latency,
                            initiated_here: here,
                            round,
                        },
                    );
                }
            }

            // 2. Check termination (conditions are evaluated on round boundaries).
            if self.is_done(
                &self.config.termination,
                round,
                protocol,
                &in_flight,
                alive.as_ref(),
            ) {
                completed = true;
                break;
            }

            // 3. Let every *alive* node act, each on its own
            //    `(seed, round, node)` RNG stream.
            for i in 0..n {
                let node = NodeId::new(i);
                if let Some(av) = &alive {
                    if !av.is_node_alive(node) {
                        continue;
                    }
                }
                let can_initiate = match self.config.mode {
                    ExchangeMode::NonBlocking => true,
                    ExchangeMode::Blocking => pending_own[i] == 0,
                };
                let choice = {
                    let view = NodeView {
                        node,
                        round,
                        rumors: &self.sets[i],
                        neighbors: match &alive {
                            Some(av) => av.neighbor_slice(self.graph, node),
                            None => self.graph.neighbor_slice(node),
                        },
                        can_initiate,
                        pending_own: pending_own[i],
                        latency_oracle: LatencyOracle {
                            graph: self.graph,
                            known_all: self.config.latencies_known,
                            source: OracleSource::Map(&discovered[i]),
                        },
                    };
                    let mut rng = decision_rng(self.config.seed, round, i as u32);
                    protocol.on_round(&view, &mut rng)
                };
                let Some(target) = choice else { continue };
                if !can_initiate {
                    continue;
                }
                let Some(edge) = self.graph.find_edge(node, target) else {
                    rejections += 1;
                    protocol.on_rejected(node, target, round);
                    continue;
                };
                if let Some(av) = &alive {
                    // A dead peer or cut edge rejects like a non-neighbor.
                    if !av.is_edge_alive(edge) || !av.is_node_alive(target) {
                        rejections += 1;
                        protocol.on_rejected(node, target, round);
                        continue;
                    }
                }
                let latency = self.graph.latency(edge);
                activations += 1;
                pending_own[i] += 1;
                in_flight.push(InFlight {
                    initiator: node,
                    responder: target,
                    edge,
                    completes_at: round + latency,
                    initiator_snapshot: self.rows[i * stride..(i + 1) * stride].to_vec(),
                    responder_snapshot: self.rows
                        [target.index() * stride..(target.index() + 1) * stride]
                        .to_vec(),
                    // Drawn exactly once per *accepted* initiation, from the
                    // dedicated loss stream — the same call points as both
                    // other engines, keeping the streams aligned.
                    lost: fault::draw_loss(&mut loss),
                });
            }

            round += 1;
        }

        if !completed {
            completed = self.is_done(
                &self.config.termination,
                round,
                protocol,
                &in_flight,
                alive.as_ref(),
            );
        }
        let faults = alive.map(|av| {
            let (residual_components, largest_component) = av.residual_components(self.graph);
            FaultReport {
                crashes,
                rejoins,
                links_cut,
                exchanges_cancelled: cancelled,
                exchanges_lost: lost_count,
                alive_nodes: av.alive_count() as u64,
                residual_components,
                largest_component,
                stranded_rumors: fault::stranded_rumors(&self.sets, &av),
                recovery_latency,
            }
        });
        RunReport {
            protocol: protocol.name().to_string(),
            rounds: round,
            activations,
            messages: activations * 2,
            completed,
            rejections,
            informed_times: if informed_times.is_empty() {
                None
            } else {
                Some(informed_times)
            },
            min_rumors_known: self.counts.iter().copied().min().unwrap_or(0),
            faults,
            // No interval logs, shadows or pages to measure; equivalence
            // compares `RunReport::semantics()`, which strips this field.
            mem: None,
        }
    }

    // gossip-lint: allow(panic-path): counts/sets are sized n at construction; node ids are dense
    fn is_done<P: Protocol>(
        &self,
        termination: &Termination,
        round: u64,
        protocol: &P,
        in_flight: &[InFlight],
        alive: Option<&AliveView>,
    ) -> bool {
        // Under faults, dissemination conditions quantify over *alive* nodes
        // and un-cut edges only (vacuously true with no node alive).
        let node_alive = |v: NodeId| alive.is_none_or(|a| a.is_node_alive(v));
        let edge_alive = |e: EdgeId| alive.is_none_or(|a| a.is_edge_alive(e));
        match *termination {
            Termination::AllKnowRumorOf(source) => {
                let r = RumorId::of_node(source);
                self.graph
                    .nodes()
                    .all(|v| !node_alive(v) || self.sets[v.index()].contains(r))
            }
            Termination::AllKnowAll => self
                .graph
                .nodes()
                .all(|v| !node_alive(v) || self.counts[v.index()] == self.universe),
            Termination::LocalBroadcast(bound) => self.graph.nodes().all(|v| {
                !node_alive(v)
                    || self.graph.neighbors(v).all(|(w, e)| {
                        self.graph.latency(e) > bound
                            || !node_alive(w)
                            || !edge_alive(e)
                            || self.sets[v.index()].contains(RumorId::of_node(w))
                    })
            }),
            Termination::FixedRounds(target) => round >= target,
            Termination::Quiescent => {
                in_flight.is_empty()
                    && self
                        .graph
                        .nodes()
                        .all(|v| !node_alive(v) || protocol.is_idle(v))
            }
        }
    }
}
