//! # gossip-sim
//!
//! A deterministic, synchronous, round-based simulator of the communication
//! model of *Slow Links, Fast Links, and the Cost of Gossip* (Sourav,
//! Robinson, Gilbert — ICDCS 2018).
//!
//! The model (Section 1 of the paper):
//!
//! * communication proceeds in synchronous rounds over the edges of an
//!   undirected graph with integer edge latencies;
//! * in each round a node may choose **one** neighbor and initiate a
//!   bidirectional exchange with it; if the edge has latency `ℓ`, the exchange
//!   completes `ℓ` rounds later and both endpoints learn each other's rumors;
//! * exchanges are **non-blocking**: a node may initiate a new exchange every
//!   round even while earlier ones are still in flight (a blocking variant is
//!   also provided because the pattern-broadcast algorithm of Section 4.2 is
//!   analysed in that setting);
//! * nodes know their neighbors but, in the *unknown latency* setting, not the
//!   latencies of their incident edges; the latency of an edge is revealed to
//!   a node once an exchange over that edge completes.
//!
//! Algorithms are expressed as [`Protocol`] implementations and executed with
//! [`Simulation`].  The engine owns the per-node [`RumorSet`]s and merges them
//! when exchanges complete, so a protocol only decides *who to contact when*;
//! this matches the paper's treatment where the content of messages is always
//! "everything I currently know".
//!
//! ```rust
//! use gossip_graph::{generators, NodeId};
//! use gossip_sim::{Simulation, SimConfig, Termination, protocols::RandomPushPull};
//!
//! let g = generators::clique(16, 1).unwrap();
//! let config = SimConfig::new(7).termination(Termination::AllKnowRumorOf(NodeId::new(0)));
//! let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
//! assert!(report.completed);
//! assert!(report.rounds <= 32, "push-pull on a small clique is fast");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fault;
mod report;
mod rumor;

#[doc(hidden)]
pub mod oracle;
pub mod protocols;
#[doc(hidden)]
pub mod reference;

pub use engine::{
    Activity, ExchangeEvent, ExchangeMode, NodeView, Protocol, ShardedProtocol, SimConfig,
    Simulation, Termination,
};
pub use fault::{ChurnSpec, FaultEvent, FaultPlan};
pub use report::{FaultReport, MemStats, RunReport};
pub use rumor::{AcquisitionLog, RumorId, RumorIter, RumorSet};
