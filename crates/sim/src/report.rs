//! Run reports: the measurements a simulation produces.

use std::fmt;

/// Engine diagnostics of a run, reported by
/// [`Simulation::run`](crate::Simulation::run): peak-memory counters of the
/// dissemination state plus the event-driven scheduler's round/active-set
/// accounting.
///
/// All byte figures are *estimates derived from deterministic counters*
/// (entries × entry size), not allocator measurements, so they are
/// reproducible across machines and usable as regression gates.  The engine
/// fills them in; the reference engine reports `None` — these diagnostics
/// are engine-specific and excluded from semantic equivalence (see
/// [`RunReport::semantics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Peak number of interval runs retained across all acquisition logs at
    /// any point of the run (8 bytes each).
    pub peak_log_runs: u64,
    /// `peak_log_runs` in bytes.
    pub peak_log_bytes: u64,
    /// Interval runs still retained when the run ended (zero once every node
    /// has saturation-collapsed).
    pub live_log_runs: u64,
    /// Total log runs reclaimed by shadow-frontier truncation and saturation
    /// collapse.
    pub truncated_runs: u64,
    /// Number of shadow-frontier advancements (each may truncate logs).
    pub shadow_advances: u64,
    /// Peak bytes held by materialised delayed-shadow bitsets (shadows are
    /// lazily allocated and freed again by saturation collapse).
    pub shadow_bytes: u64,
    /// Peak bytes held by the per-node *paged* rumor sets: peak dense pages
    /// times the per-page cost, plus the fixed per-node set overhead.  Empty
    /// and full sentinel pages are free, and a fully saturated set collapses
    /// to zero pages — this is what replaces the old dense `n²/8` floor.
    pub rumor_set_bytes: u64,
    /// Dense rumor-set pages alive when the run ended.
    pub pages_live: u64,
    /// Peak dense rumor-set pages at any merge boundary of the run.
    pub pages_peak: u64,
    /// Nodes whose rumor set was full when the run ended.
    pub saturated_nodes: u64,
    /// Saturated nodes whose log and shadow were freed by saturation
    /// collapse (a node collapses one calendar lap after filling up, once no
    /// outstanding snapshot can reference its history).
    pub collapsed_nodes: u64,
    /// Peak bytes of the engine's dissemination state: rumor sets + shadows +
    /// retained logs + per-edge watermarks + latency-discovery bits.  The
    /// graph itself and protocol state are not included.
    pub peak_engine_bytes: u64,
    /// Rounds the event-driven scheduler actually executed (delivered
    /// exchanges, advanced shadows, asked active nodes to act).
    pub rounds_simulated: u64,
    /// Rounds the scheduler *fast-forwarded over*: the active worklist was
    /// empty, so the round clock jumped straight to the next non-empty
    /// calendar bucket (in-flight completion or shadow/collapse lap) instead
    /// of spinning an `O(n)` decision loop per empty round.  Skipped rounds
    /// are provably no-ops — [`RunReport::rounds`] and every other semantic
    /// field are identical to an engine that walked them one by one.
    pub rounds_skipped: u64,
    /// Largest size of the scheduler's active worklist at any decision phase
    /// (at least `n` — every node starts active — and protocols that never
    /// report idleness keep it pinned there).
    pub active_peak: u64,
    /// Size of the active worklist when the run stopped.
    pub active_final: u64,
}

/// Graceful-degradation accounting of a faulted run, reported whenever a
/// [`FaultPlan`](crate::FaultPlan) was attached (even an inert one).
///
/// Unlike [`MemStats`] this section is *semantic*: both engines compute it
/// from the same fault schedule and final state, it is preserved by
/// [`RunReport::semantics`], and the `fault_equivalence` suite pins it
/// byte-identical across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Crash events applied (crashes of already-dead nodes are no-ops and
    /// not counted; events scheduled after the run stopped never happen).
    pub crashes: u64,
    /// Amnesiac rejoin events applied.
    pub rejoins: u64,
    /// Link-cut events applied.
    pub links_cut: u64,
    /// In-flight exchanges cancelled by a crash or link cut before their
    /// completion round.
    pub exchanges_cancelled: u64,
    /// Exchanges lost in transit: initiated, held the initiator's slot for
    /// the edge's full latency, then timed out without delivering.
    pub exchanges_lost: u64,
    /// Nodes alive when the run stopped.
    pub alive_nodes: u64,
    /// Connected components of the residual topology (alive nodes over
    /// un-cut edges) when the run stopped; 0 if no node was alive.
    pub residual_components: u64,
    /// Size of the largest residual component.
    pub largest_component: u64,
    /// Rumors stranded on dead nodes: known by no alive node when the run
    /// stopped.
    pub stranded_rumors: u64,
    /// Worst re-dissemination latency over the rejoined nodes that
    /// *recovered* — re-learned the tracked rumor (or the
    /// [`AllKnowRumorOf`](crate::Termination::AllKnowRumorOf) source rumor,
    /// or with neither tracked re-filled their whole set) — measured in
    /// rounds from the rejoin.  `None` if no rejoined node recovered.
    pub recovery_latency: Option<u64>,
}

/// Measurements from one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Name of the protocol that was run.
    pub protocol: String,
    /// Number of rounds elapsed when the run stopped.
    pub rounds: u64,
    /// Number of exchanges initiated (edge activations).
    pub activations: u64,
    /// Number of messages sent (two per exchange: request + response).
    pub messages: u64,
    /// `true` if the termination condition was met (as opposed to hitting the round cap).
    pub completed: bool,
    /// Number of schedule errors: rounds in which a protocol chose a target
    /// that is not a neighbor of the choosing node (reported back through
    /// [`Protocol::on_rejected`](crate::Protocol::on_rejected)).
    pub rejections: u64,
    /// Per-node round at which the tracked rumor was first known
    /// (only present if [`SimConfig::track_rumor`](crate::SimConfig::track_rumor) was used).
    pub informed_times: Option<Vec<Option<u64>>>,
    /// The smallest rumor-set size over all nodes at the end of the run
    /// (equals `n` exactly when all-to-all dissemination finished; dead
    /// nodes count with their frozen sets).
    pub min_rumors_known: usize,
    /// Graceful-degradation accounting; present exactly when a
    /// [`FaultPlan`](crate::FaultPlan) was attached to the run.  Semantic
    /// (both engines must agree) — *not* stripped by
    /// [`semantics`](Self::semantics).
    pub faults: Option<FaultReport>,
    /// Engine diagnostics: peak-memory counters of the dissemination state
    /// plus the scheduler's skipped-round / active-set accounting
    /// (`None` for the reference engine, which predates the counters).
    ///
    /// Deterministic, but engine-specific: strip with
    /// [`semantics`](Self::semantics) before comparing reports across engines.
    pub mem: Option<MemStats>,
}

impl RunReport {
    /// A copy of the report with the engine-specific [`MemStats`] stripped —
    /// the fields two semantically equivalent engines must agree on.
    pub fn semantics(&self) -> RunReport {
        RunReport {
            mem: None,
            ..self.clone()
        }
    }
    /// The largest per-node informed time, if informed times were tracked and
    /// every node learned the tracked rumor.
    pub fn last_informed_time(&self) -> Option<u64> {
        self.informed_times.as_ref().and_then(|ts| {
            ts.iter()
                .copied()
                .collect::<Option<Vec<u64>>>()
                .map(|v| v.into_iter().max().unwrap_or(0))
        })
    }

    /// Mean per-node informed time, if tracked and complete.
    pub fn mean_informed_time(&self) -> Option<f64> {
        self.informed_times.as_ref().and_then(|ts| {
            let known: Vec<u64> = ts.iter().copied().collect::<Option<Vec<u64>>>()?;
            if known.is_empty() {
                return None;
            }
            Some(known.iter().sum::<u64>() as f64 / known.len() as f64)
        })
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} rounds, {} activations, {} messages, completed = {}",
            self.protocol, self.rounds, self.activations, self.messages, self.completed
        )?;
        if self.rejections > 0 {
            write!(f, ", {} rejected targets", self.rejections)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(informed: Option<Vec<Option<u64>>>) -> RunReport {
        RunReport {
            protocol: "test".into(),
            rounds: 10,
            activations: 20,
            messages: 40,
            completed: true,
            rejections: 0,
            informed_times: informed,
            min_rumors_known: 4,
            faults: None,
            mem: None,
        }
    }

    #[test]
    fn semantics_strips_only_the_memory_diagnostics() {
        let mut r = sample(Some(vec![Some(0)]));
        r.mem = Some(MemStats {
            peak_log_runs: 3,
            ..MemStats::default()
        });
        let stripped = r.semantics();
        assert_eq!(stripped.mem, None);
        assert_ne!(r, stripped);
        assert_eq!(stripped, r.semantics());
        assert_eq!(stripped.rounds, r.rounds);
        assert_eq!(stripped.informed_times, r.informed_times);
    }

    #[test]
    fn informed_time_statistics() {
        let r = sample(Some(vec![Some(0), Some(3), Some(7)]));
        assert_eq!(r.last_informed_time(), Some(7));
        assert!((r.mean_informed_time().unwrap() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_information_gives_none() {
        let r = sample(Some(vec![Some(0), None]));
        assert_eq!(r.last_informed_time(), None);
        assert_eq!(r.mean_informed_time(), None);
        let r = sample(None);
        assert_eq!(r.last_informed_time(), None);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let r = sample(None);
        let s = r.to_string();
        assert!(s.contains("10 rounds"));
        assert!(s.contains("20 activations"));
        assert!(s.contains("completed = true"));
    }
}
