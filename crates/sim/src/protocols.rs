//! Reference protocols that live with the engine.
//!
//! The paper's algorithms proper (ℓ-DTG, spanner broadcast, pattern broadcast,
//! …) live in `gossip-core`.  The engine crate only ships the two elementary
//! strategies that everything else is measured against — uniform random
//! push–pull ([`RandomPushPull`]) and deterministic round-robin flooding
//! ([`RoundRobinFlood`]) — plus a [`Silent`] protocol used in tests.

use gossip_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::engine::{NodeView, Protocol};

/// Classical push–pull (the "random phone call" model): every node contacts a
/// uniformly random neighbor in every round.
///
/// Theorem 29 of the paper shows this completes information dissemination in
/// `O((ℓ*/φ*)·log n)` rounds w.h.p. in the latency model.
#[derive(Debug, Clone)]
pub struct RandomPushPull {
    degrees: Vec<usize>,
}

impl RandomPushPull {
    /// Creates the protocol for a given graph (only the degrees are needed).
    pub fn new(graph: &Graph) -> Self {
        RandomPushPull {
            degrees: graph.nodes().map(|v| graph.degree(v)).collect(),
        }
    }
}

impl Protocol for RandomPushPull {
    fn name(&self) -> &'static str {
        "push-pull"
    }

    fn on_round(&mut self, view: &NodeView<'_>, rng: &mut SmallRng) -> Option<NodeId> {
        let deg = self.degrees[view.node.index()];
        if deg == 0 {
            return None;
        }
        let pick = rng.gen_range(0..deg);
        Some(view.neighbors[pick].0)
    }
}

/// Deterministic flooding: every node cycles through its neighbors in
/// round-robin order, contacting one per round.
///
/// This is the natural deterministic baseline; on a star it exhibits the
/// `Ω(n·D)` behaviour the paper mentions when pull is unavailable, and it is
/// also the inner loop of the RR-broadcast phase of the spanner algorithm
/// (there restricted to spanner out-edges, implemented in `gossip-core`).
#[derive(Debug, Clone)]
pub struct RoundRobinFlood {
    next: Vec<usize>,
    degrees: Vec<usize>,
}

impl RoundRobinFlood {
    /// Creates the protocol for a given graph.
    pub fn new(graph: &Graph) -> Self {
        RoundRobinFlood {
            next: vec![0; graph.node_count()],
            degrees: graph.nodes().map(|v| graph.degree(v)).collect(),
        }
    }
}

impl Protocol for RoundRobinFlood {
    fn name(&self) -> &'static str {
        "round-robin-flood"
    }

    fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        let i = view.node.index();
        let deg = self.degrees[i];
        if deg == 0 {
            return None;
        }
        let pick = self.next[i] % deg;
        self.next[i] = (self.next[i] + 1) % deg;
        Some(view.neighbors[pick].0)
    }
}

/// A protocol that never communicates; useful for engine tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct Silent;

impl Protocol for Silent {
    fn name(&self) -> &'static str {
        "silent"
    }

    fn on_round(&mut self, _view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        None
    }

    fn is_idle(&self, _node: NodeId) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulation, Termination};
    use gossip_graph::generators;

    #[test]
    fn push_pull_completes_all_to_all_on_expander_like_graph() {
        let g = generators::clique(20, 1).unwrap();
        let config = SimConfig::new(42).termination(Termination::AllKnowAll);
        let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
        assert!(report.completed);
        assert_eq!(report.min_rumors_known, 20);
    }

    #[test]
    fn round_robin_flood_completes_on_path() {
        let g = generators::path(10, 2).unwrap();
        let config = SimConfig::new(1).termination(Termination::AllKnowAll);
        let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
        assert!(report.completed);
    }

    #[test]
    fn round_robin_flood_is_deterministic() {
        let g = generators::cycle(12, 3).unwrap();
        let run = |seed| {
            let config = SimConfig::new(seed).termination(Termination::AllKnowAll);
            Simulation::new(&g, config)
                .run(&mut RoundRobinFlood::new(&g))
                .rounds
        };
        assert_eq!(run(1), run(999));
    }

    #[test]
    fn push_pull_is_reproducible_for_a_fixed_seed() {
        let g = generators::erdos_renyi(40, 0.2, 1, &mut rand::rngs::SmallRng::seed_from_u64(5))
            .unwrap();
        let run = |seed| {
            let config = SimConfig::new(seed).termination(Termination::AllKnowAll);
            Simulation::new(&g, config)
                .run(&mut RandomPushPull::new(&g))
                .rounds
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn silent_protocol_is_quiescent_immediately() {
        let g = generators::clique(4, 1).unwrap();
        let config = SimConfig::new(1)
            .termination(Termination::Quiescent)
            .max_rounds(10);
        let report = Simulation::new(&g, config).run(&mut Silent);
        assert!(report.completed);
        assert_eq!(report.rounds, 0);
    }

    use rand::SeedableRng;
}
