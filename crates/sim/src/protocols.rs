//! Reference protocols that live with the engine.
//!
//! The paper's algorithms proper (ℓ-DTG, spanner broadcast, pattern broadcast,
//! …) live in `gossip-core`.  The engine crate only ships the two elementary
//! strategies that everything else is measured against — uniform random
//! push–pull ([`RandomPushPull`]) and deterministic round-robin flooding
//! ([`RoundRobinFlood`]) — plus a [`Silent`] protocol used in tests.
//!
//! Both protocols read the degree from `view.neighbors.len()` instead of
//! caching per-graph degree vectors: a protocol value reused on a different
//! graph would otherwise act on stale degrees and desync from the engine.

use gossip_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::engine::{Activity, NodeView, Protocol, ShardedProtocol};

/// Classical push–pull (the "random phone call" model): every node contacts a
/// uniformly random neighbor in every round — until it is *saturated*.
///
/// Theorem 29 of the paper shows this completes information dissemination in
/// `O((ℓ*/φ*)·log n)` rounds w.h.p. in the latency model.
///
/// A node whose rumor set holds the full universe goes quiescent: it has
/// nothing left to pull, and anything it could push is pulled by its
/// unsaturated neighbors' own calls, so it stops initiating (the classical
/// "coordinated stopping" variant of the random phone call model).
/// Saturation is irreversible, so the protocol reports
/// [`Activity::Quiescent`] and the engine retires the node — this is what
/// lets runs that continue past all-to-all completion (`FixedRounds` far
/// beyond saturation) fast-forward instead of spinning `O(n)` RNG draws per
/// round.  The silence decision draws nothing from the RNG, keeping the
/// random stream — and therefore the whole run — identical whether or not
/// the engine actually asks the saturated node.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPushPull;

impl RandomPushPull {
    /// Creates the protocol.  The graph is not inspected — all topology is
    /// read per round from the [`NodeView`] — but the constructor keeps the
    /// historical signature so call sites document which graph they run on.
    pub fn new(_graph: &Graph) -> Self {
        RandomPushPull
    }
}

impl RandomPushPull {
    /// The per-node decision, shared verbatim by the serial and sharded
    /// paths — the protocol is stateless, so both are this one function.
    // gossip-lint: allow(panic-path): gen_range draws within the nonempty neighbor slice
    fn decide(view: &NodeView<'_>, rng: &mut SmallRng) -> Option<NodeId> {
        let deg = view.neighbors.len();
        // The saturation check comes before the RNG draw: a quiescent node
        // must not perturb the random stream (see the `activity` contract).
        if deg == 0 || view.rumors.is_full() {
            return None;
        }
        let pick = rng.gen_range(0..deg);
        Some(view.neighbors[pick].0)
    }

    /// Shared by `activity` and `shard_activity`, so the purity audit walks
    /// it transitively from both contracts.
    fn quiet(view: &NodeView<'_>) -> Activity {
        // A full rumor set never shrinks and an isolated node never gains a
        // neighbor: both silences are permanent.
        if view.neighbors.is_empty() || view.rumors.is_full() {
            Activity::Quiescent
        } else {
            Activity::Active
        }
    }
}

impl Protocol for RandomPushPull {
    fn name(&self) -> &'static str {
        "push-pull"
    }

    fn on_round(&mut self, view: &NodeView<'_>, rng: &mut SmallRng) -> Option<NodeId> {
        Self::decide(view, rng)
    }

    // gossip-audit: contract(pure)
    fn activity(&self, view: &NodeView<'_>) -> Activity {
        Self::quiet(view)
    }
}

impl ShardedProtocol for RandomPushPull {
    /// Stateless: a shard carries nothing.
    type Shard<'s> = ();

    fn decision_shards<'s>(&'s mut self, cuts: &[u32]) -> Vec<Self::Shard<'s>> {
        vec![(); cuts.len().saturating_sub(1)]
    }

    fn shard_on_round(
        _shard: &mut Self::Shard<'_>,
        view: &NodeView<'_>,
        rng: &mut SmallRng,
    ) -> Option<NodeId> {
        Self::decide(view, rng)
    }

    // gossip-audit: contract(pure)
    fn shard_activity(_shard: &Self::Shard<'_>, view: &NodeView<'_>) -> Activity {
        Self::quiet(view)
    }
}

/// Per-node cursor and lap bookkeeping of [`RoundRobinFlood`].
#[derive(Debug, Clone, Copy, Default)]
struct FloodCursor {
    /// Index of the next neighbor to contact.
    cursor: usize,
    /// The node's rumor count the last time a lap was (re)started.  New
    /// rumors since then make the node *dirty*: it owes every neighbor one
    /// more contact.
    last_seen: usize,
    /// Contacts left in the current lap (0 = lap complete, node is clean).
    remaining: usize,
}

/// Deterministic flooding: a node cycles through its neighbors in round-robin
/// order, contacting one per round — but only while it is *dirty*, i.e. while
/// it has learned rumors its neighbors have not yet been offered.
///
/// This is the natural deterministic baseline; on a star it exhibits the
/// `Ω(n·D)` behaviour the paper mentions when pull is unavailable, and it is
/// also the inner loop of the RR-broadcast phase of the spanner algorithm
/// (there restricted to spanner out-edges, implemented in `gossip-core`).
///
/// The cursor advances only when the engine will actually accept the choice
/// (`view.can_initiate`): in [`Blocking`](crate::ExchangeMode::Blocking) mode
/// a node waiting on a slow edge would otherwise spin its cursor past
/// neighbors that were never contacted, starving them.
///
/// **Dirty-lap idling.**  Each node caches the rumor count at which its
/// current relay lap started; once it has contacted every neighbor without
/// learning anything new in between, another contact could only repeat an
/// offer every neighbor has already received, so the node stops initiating
/// ("flood until quiet") instead of re-scanning its neighbor list forever.
/// New rumors — which can only arrive through a completed incident exchange,
/// one of the engine's wake events — restart a full lap from the current
/// cursor position.  The clean-state silence neither mutates the protocol
/// nor touches the RNG, so it is reported as [`Activity::IdleUntilWoken`]
/// and the engine can skip the node outright.
///
/// The lap bookkeeping observes rumor *counts*, which is only meaningful
/// within one simulation: a protocol value carried to a **different**
/// simulation whose initial counts happen to match the old final ones would
/// believe it already offered those (entirely different) rumors and stay
/// quiet.  Reusing a value is supported for *continuing* a run on the same
/// rumor state (see `Simulation::run`); for anything else, construct a fresh
/// protocol.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinFlood {
    state: Vec<FloodCursor>,
}

impl RoundRobinFlood {
    /// Creates the protocol for a given graph (only the node count is used,
    /// to pre-size the cursor table; the table grows on demand if the
    /// protocol is reused on a larger graph).
    pub fn new(graph: &Graph) -> Self {
        RoundRobinFlood {
            state: vec![FloodCursor::default(); graph.node_count()],
        }
    }
}

impl RoundRobinFlood {
    /// Advances one node's lap state and picks its next neighbor — the
    /// per-cursor decision shared verbatim by the serial and sharded paths.
    // gossip-lint: allow(panic-path): cursor wraps modulo the nonzero degree; deg == 0 returns before any index
    fn step(st: &mut FloodCursor, view: &NodeView<'_>) -> Option<NodeId> {
        let deg = view.neighbors.len();
        if deg == 0 || !view.can_initiate {
            // Do not advance the cursor (or any lap state) for a choice the
            // engine would discard.
            return None;
        }
        let len = view.rumors.len();
        if len != st.last_seen {
            // Fresh rumors since the lap started (or a protocol value reused
            // on a new simulation, where the count may even have shrunk):
            // every neighbor is owed a contact again.
            st.last_seen = len;
            st.remaining = deg;
        }
        if st.remaining == 0 {
            // Clean: every neighbor has been offered everything this node
            // knows.  Stay silent until new rumors arrive.
            return None;
        }
        st.remaining -= 1;
        let pick = st.cursor % deg;
        st.cursor = (st.cursor + 1) % deg;
        Some(view.neighbors[pick].0)
    }

    /// The `activity` predicate over one cursor's lap state.  Shared by
    /// `activity` and `shard_activity`, so the purity audit walks it
    /// transitively from both contracts.
    fn lap_activity(st: FloodCursor, view: &NodeView<'_>) -> Activity {
        let deg = view.neighbors.len();
        if deg == 0 {
            return Activity::Quiescent;
        }
        if !view.can_initiate {
            // Blocked: `on_round` returns `None` without mutating until the
            // own exchange completes — which is a wake event.
            return Activity::IdleUntilWoken;
        }
        // Mirror the `step` predicate exactly: silence is only promised
        // when the rumor count is unchanged *and* the lap is complete.
        if view.rumors.len() != st.last_seen || st.remaining > 0 {
            Activity::Active
        } else {
            Activity::IdleUntilWoken
        }
    }
}

impl Protocol for RoundRobinFlood {
    fn name(&self) -> &'static str {
        "round-robin-flood"
    }

    // gossip-lint: allow(panic-path): the cursor table is resized to cover the node index right above
    fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        let i = view.node.index();
        if i >= self.state.len() {
            self.state.resize(i + 1, FloodCursor::default());
        }
        Self::step(&mut self.state[i], view)
    }

    // gossip-audit: contract(pure)
    fn activity(&self, view: &NodeView<'_>) -> Activity {
        let st = self
            .state
            .get(view.node.index())
            .copied()
            .unwrap_or_default();
        Self::lap_activity(st, view)
    }
}

/// One contiguous node-range slice of [`RoundRobinFlood`]'s cursor table.
#[derive(Debug)]
pub struct FloodShard<'s> {
    /// First node id of the shard's range.
    base: usize,
    /// The cursors of nodes `base .. base + cursors.len()`.
    cursors: &'s mut [FloodCursor],
}

impl ShardedProtocol for RoundRobinFlood {
    type Shard<'s> = FloodShard<'s>;

    // gossip-lint: allow(panic-path): cuts are strictly increasing and end at the node count
    fn decision_shards<'s>(&'s mut self, cuts: &[u32]) -> Vec<Self::Shard<'s>> {
        // Grow the table up front: a shard indexes its slice directly, so the
        // serial path's on-demand resize must have already happened.
        let n = cuts.last().copied().unwrap_or(0) as usize;
        if self.state.len() < n {
            self.state.resize(n, FloodCursor::default());
        }
        let mut shards = Vec::with_capacity(cuts.len().saturating_sub(1));
        let mut rest: &mut [FloodCursor] = &mut self.state;
        let mut consumed = 0usize;
        for pair in cuts.windows(2) {
            let (lo, hi) = (pair[0] as usize, pair[1] as usize);
            // `rest` still holds nodes `consumed..`; peel off everything
            // through `hi` and keep the `lo..hi` tail as the shard.
            let (mine, tail) = rest.split_at_mut(hi - consumed);
            shards.push(FloodShard {
                base: lo,
                cursors: &mut mine[lo - consumed..],
            });
            rest = tail;
            consumed = hi;
        }
        shards
    }

    // gossip-lint: allow(panic-path): the engine only presents nodes inside the shard's cut range
    fn shard_on_round(
        shard: &mut Self::Shard<'_>,
        view: &NodeView<'_>,
        _rng: &mut SmallRng,
    ) -> Option<NodeId> {
        Self::step(&mut shard.cursors[view.node.index() - shard.base], view)
    }

    // gossip-lint: allow(panic-path): the engine only presents nodes inside the shard's cut range
    // gossip-audit: contract(pure)
    fn shard_activity(shard: &Self::Shard<'_>, view: &NodeView<'_>) -> Activity {
        Self::lap_activity(shard.cursors[view.node.index() - shard.base], view)
    }
}

/// A protocol that never communicates; useful for engine tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct Silent;

impl Protocol for Silent {
    fn name(&self) -> &'static str {
        "silent"
    }

    fn on_round(&mut self, _view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        None
    }

    fn is_idle(&self, _node: NodeId) -> bool {
        true
    }

    // gossip-audit: contract(pure)
    fn activity(&self, _view: &NodeView<'_>) -> Activity {
        Activity::Quiescent
    }
}

impl ShardedProtocol for Silent {
    /// Stateless: a shard carries nothing.
    type Shard<'s> = ();

    fn decision_shards<'s>(&'s mut self, cuts: &[u32]) -> Vec<Self::Shard<'s>> {
        vec![(); cuts.len().saturating_sub(1)]
    }

    fn shard_on_round(
        _shard: &mut Self::Shard<'_>,
        _view: &NodeView<'_>,
        _rng: &mut SmallRng,
    ) -> Option<NodeId> {
        None
    }

    // gossip-audit: contract(pure)
    fn shard_activity(_shard: &Self::Shard<'_>, _view: &NodeView<'_>) -> Activity {
        Activity::Quiescent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExchangeMode, SimConfig, Simulation, Termination};
    use gossip_graph::generators;

    #[test]
    fn push_pull_completes_all_to_all_on_expander_like_graph() {
        let g = generators::clique(20, 1).unwrap();
        let config = SimConfig::new(42).termination(Termination::AllKnowAll);
        let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
        assert!(report.completed);
        assert_eq!(report.min_rumors_known, 20);
    }

    #[test]
    fn round_robin_flood_completes_on_path() {
        let g = generators::path(10, 2).unwrap();
        let config = SimConfig::new(1).termination(Termination::AllKnowAll);
        let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
        assert!(report.completed);
    }

    #[test]
    fn round_robin_flood_is_deterministic() {
        let g = generators::cycle(12, 3).unwrap();
        let run = |seed| {
            let config = SimConfig::new(seed).termination(Termination::AllKnowAll);
            Simulation::new(&g, config)
                .run(&mut RoundRobinFlood::new(&g))
                .rounds
        };
        assert_eq!(run(1), run(999));
    }

    #[test]
    fn push_pull_is_reproducible_for_a_fixed_seed() {
        let g = generators::erdos_renyi(40, 0.2, 1, &mut rand::rngs::SmallRng::seed_from_u64(5))
            .unwrap();
        let run = |seed| {
            let config = SimConfig::new(seed).termination(Termination::AllKnowAll);
            Simulation::new(&g, config)
                .run(&mut RandomPushPull::new(&g))
                .rounds
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn silent_protocol_is_quiescent_immediately() {
        let g = generators::clique(4, 1).unwrap();
        let config = SimConfig::new(1)
            .termination(Termination::Quiescent)
            .max_rounds(10);
        let report = Simulation::new(&g, config).run(&mut Silent);
        assert!(report.completed);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn protocols_survive_reuse_on_a_different_graph() {
        // Degrees are read from the view, so a protocol value carried from a
        // small graph to a larger one must behave exactly like a fresh one.
        let small = generators::path(3, 1).unwrap();
        let big = generators::clique(9, 1).unwrap();

        let mut reused = RandomPushPull::new(&small);
        let config = SimConfig::new(11).termination(Termination::AllKnowAll);
        let _ = Simulation::new(&small, config.clone()).run(&mut reused);
        let carried = Simulation::new(&big, config.clone()).run(&mut reused);
        let fresh = Simulation::new(&big, config.clone()).run(&mut RandomPushPull::new(&big));
        assert_eq!(carried, fresh);

        let mut reused = RoundRobinFlood::new(&small);
        let _ = Simulation::new(&small, config.clone()).run(&mut reused);
        let carried = Simulation::new(&big, config.clone()).run(&mut reused);
        assert!(carried.completed);
        assert_eq!(carried.min_rumors_known, 9);
    }

    /// Records which targets the engine actually accepted from an inner protocol.
    struct Recording<P> {
        inner: P,
        initiated: Vec<(NodeId, NodeId)>,
    }

    impl<P: Protocol> Protocol for Recording<P> {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn on_round(&mut self, view: &NodeView<'_>, rng: &mut SmallRng) -> Option<NodeId> {
            let choice = self.inner.on_round(view, rng);
            if view.can_initiate {
                if let Some(target) = choice {
                    self.initiated.push((view.node, target));
                }
            }
            choice
        }
        fn on_exchange(&mut self, node: NodeId, event: &crate::ExchangeEvent) {
            self.inner.on_exchange(node, event);
        }
        fn is_idle(&self, node: NodeId) -> bool {
            self.inner.is_idle(node)
        }
        fn activity(&self, view: &NodeView<'_>) -> Activity {
            self.inner.activity(view)
        }
    }

    #[test]
    fn flood_goes_idle_after_a_clean_lap_and_rewakes_on_news() {
        // Regression test for the dirty-lap flag: a node that has contacted
        // every neighbor without learning anything new since the lap began
        // must stop initiating (the old cursor re-scanned neighbors every
        // round forever), and must resume when a merge delivers new rumors.
        let g = generators::path(2, 1).unwrap();
        let config = SimConfig::new(1).termination(Termination::FixedRounds(40));
        let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
        // Round 0: both initiate (initial rumor is un-offered news).  Round
        // 1: the merge delivers the peer's rumor — news again, one more
        // offer each.  Round 2 onward: rumor sets stop growing, laps are
        // complete, both nodes stay silent.  The old protocol initiated
        // every round: 40 rounds x 2 nodes = 80 activations.
        assert_eq!(report.activations, 4, "{report}");
        let mem = report.mem.unwrap();
        assert!(
            mem.rounds_skipped > 0,
            "idle flood nodes must let the engine fast-forward ({mem:?})"
        );
        assert_eq!(mem.active_final, 0, "{mem:?}");

        // A three-node path shows re-waking: the middle node goes clean
        // after its first lap, then receives rumor 2 (and later rumor 0)
        // through completed exchanges and must relay each across.
        let g = generators::path(3, 1).unwrap();
        let config = SimConfig::new(1).termination(Termination::AllKnowAll);
        let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
        assert!(report.completed, "re-woken nodes must finish the relay");
        assert_eq!(report.min_rumors_known, 3);
    }

    #[test]
    fn round_robin_cursor_does_not_advance_while_blocked() {
        // Regression test: in Blocking mode with latency-3 edges the cursor
        // used to advance every round, so the star center re-contacted the
        // same leaf forever (0, 3, 6, … ≡ 0 mod 3) and starved the others.
        let g = generators::star(4, 3).unwrap();
        let config = SimConfig::new(2)
            .mode(ExchangeMode::Blocking)
            .termination(Termination::FixedRounds(30));
        let mut recording = Recording {
            inner: RoundRobinFlood::new(&g),
            initiated: Vec::new(),
        };
        let _ = Simulation::new(&g, config).run(&mut recording);
        let center = NodeId::new(0);
        let contacted: std::collections::BTreeSet<NodeId> = recording
            .initiated
            .iter()
            .filter(|&&(from, _)| from == center)
            .map(|&(_, to)| to)
            .collect();
        assert_eq!(
            contacted.len(),
            3,
            "the center must rotate through all three leaves, got {contacted:?}"
        );
    }

    use rand::SeedableRng;
}
