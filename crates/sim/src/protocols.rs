//! Reference protocols that live with the engine.
//!
//! The paper's algorithms proper (ℓ-DTG, spanner broadcast, pattern broadcast,
//! …) live in `gossip-core`.  The engine crate only ships the two elementary
//! strategies that everything else is measured against — uniform random
//! push–pull ([`RandomPushPull`]) and deterministic round-robin flooding
//! ([`RoundRobinFlood`]) — plus a [`Silent`] protocol used in tests.
//!
//! Both protocols read the degree from `view.neighbors.len()` instead of
//! caching per-graph degree vectors: a protocol value reused on a different
//! graph would otherwise act on stale degrees and desync from the engine.

use gossip_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::engine::{NodeView, Protocol};

/// Classical push–pull (the "random phone call" model): every node contacts a
/// uniformly random neighbor in every round.
///
/// Theorem 29 of the paper shows this completes information dissemination in
/// `O((ℓ*/φ*)·log n)` rounds w.h.p. in the latency model.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPushPull;

impl RandomPushPull {
    /// Creates the protocol.  The graph is not inspected — all topology is
    /// read per round from the [`NodeView`] — but the constructor keeps the
    /// historical signature so call sites document which graph they run on.
    pub fn new(_graph: &Graph) -> Self {
        RandomPushPull
    }
}

impl Protocol for RandomPushPull {
    fn name(&self) -> &'static str {
        "push-pull"
    }

    fn on_round(&mut self, view: &NodeView<'_>, rng: &mut SmallRng) -> Option<NodeId> {
        let deg = view.neighbors.len();
        if deg == 0 {
            return None;
        }
        let pick = rng.gen_range(0..deg);
        Some(view.neighbors[pick].0)
    }
}

/// Deterministic flooding: every node cycles through its neighbors in
/// round-robin order, contacting one per round.
///
/// This is the natural deterministic baseline; on a star it exhibits the
/// `Ω(n·D)` behaviour the paper mentions when pull is unavailable, and it is
/// also the inner loop of the RR-broadcast phase of the spanner algorithm
/// (there restricted to spanner out-edges, implemented in `gossip-core`).
///
/// The cursor advances only when the engine will actually accept the choice
/// (`view.can_initiate`): in [`Blocking`](crate::ExchangeMode::Blocking) mode
/// a node waiting on a slow edge would otherwise spin its cursor past
/// neighbors that were never contacted, starving them.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinFlood {
    next: Vec<usize>,
}

impl RoundRobinFlood {
    /// Creates the protocol for a given graph (only the node count is used,
    /// to pre-size the cursor table; the table grows on demand if the
    /// protocol is reused on a larger graph).
    pub fn new(graph: &Graph) -> Self {
        RoundRobinFlood {
            next: vec![0; graph.node_count()],
        }
    }
}

impl Protocol for RoundRobinFlood {
    fn name(&self) -> &'static str {
        "round-robin-flood"
    }

    fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        let deg = view.neighbors.len();
        if deg == 0 || !view.can_initiate {
            // Do not advance the cursor for a choice the engine would discard.
            return None;
        }
        let i = view.node.index();
        if i >= self.next.len() {
            self.next.resize(i + 1, 0);
        }
        let pick = self.next[i] % deg;
        self.next[i] = (self.next[i] + 1) % deg;
        Some(view.neighbors[pick].0)
    }
}

/// A protocol that never communicates; useful for engine tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct Silent;

impl Protocol for Silent {
    fn name(&self) -> &'static str {
        "silent"
    }

    fn on_round(&mut self, _view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        None
    }

    fn is_idle(&self, _node: NodeId) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExchangeMode, SimConfig, Simulation, Termination};
    use gossip_graph::generators;

    #[test]
    fn push_pull_completes_all_to_all_on_expander_like_graph() {
        let g = generators::clique(20, 1).unwrap();
        let config = SimConfig::new(42).termination(Termination::AllKnowAll);
        let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
        assert!(report.completed);
        assert_eq!(report.min_rumors_known, 20);
    }

    #[test]
    fn round_robin_flood_completes_on_path() {
        let g = generators::path(10, 2).unwrap();
        let config = SimConfig::new(1).termination(Termination::AllKnowAll);
        let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
        assert!(report.completed);
    }

    #[test]
    fn round_robin_flood_is_deterministic() {
        let g = generators::cycle(12, 3).unwrap();
        let run = |seed| {
            let config = SimConfig::new(seed).termination(Termination::AllKnowAll);
            Simulation::new(&g, config)
                .run(&mut RoundRobinFlood::new(&g))
                .rounds
        };
        assert_eq!(run(1), run(999));
    }

    #[test]
    fn push_pull_is_reproducible_for_a_fixed_seed() {
        let g = generators::erdos_renyi(40, 0.2, 1, &mut rand::rngs::SmallRng::seed_from_u64(5))
            .unwrap();
        let run = |seed| {
            let config = SimConfig::new(seed).termination(Termination::AllKnowAll);
            Simulation::new(&g, config)
                .run(&mut RandomPushPull::new(&g))
                .rounds
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn silent_protocol_is_quiescent_immediately() {
        let g = generators::clique(4, 1).unwrap();
        let config = SimConfig::new(1)
            .termination(Termination::Quiescent)
            .max_rounds(10);
        let report = Simulation::new(&g, config).run(&mut Silent);
        assert!(report.completed);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn protocols_survive_reuse_on_a_different_graph() {
        // Degrees are read from the view, so a protocol value carried from a
        // small graph to a larger one must behave exactly like a fresh one.
        let small = generators::path(3, 1).unwrap();
        let big = generators::clique(9, 1).unwrap();

        let mut reused = RandomPushPull::new(&small);
        let config = SimConfig::new(11).termination(Termination::AllKnowAll);
        let _ = Simulation::new(&small, config.clone()).run(&mut reused);
        let carried = Simulation::new(&big, config.clone()).run(&mut reused);
        let fresh = Simulation::new(&big, config.clone()).run(&mut RandomPushPull::new(&big));
        assert_eq!(carried, fresh);

        let mut reused = RoundRobinFlood::new(&small);
        let _ = Simulation::new(&small, config.clone()).run(&mut reused);
        let carried = Simulation::new(&big, config.clone()).run(&mut reused);
        assert!(carried.completed);
        assert_eq!(carried.min_rumors_known, 9);
    }

    /// Records which targets the engine actually accepted from an inner protocol.
    struct Recording<P> {
        inner: P,
        initiated: Vec<(NodeId, NodeId)>,
    }

    impl<P: Protocol> Protocol for Recording<P> {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn on_round(&mut self, view: &NodeView<'_>, rng: &mut SmallRng) -> Option<NodeId> {
            let choice = self.inner.on_round(view, rng);
            if view.can_initiate {
                if let Some(target) = choice {
                    self.initiated.push((view.node, target));
                }
            }
            choice
        }
        fn on_exchange(&mut self, node: NodeId, event: &crate::ExchangeEvent) {
            self.inner.on_exchange(node, event);
        }
        fn is_idle(&self, node: NodeId) -> bool {
            self.inner.is_idle(node)
        }
    }

    #[test]
    fn round_robin_cursor_does_not_advance_while_blocked() {
        // Regression test: in Blocking mode with latency-3 edges the cursor
        // used to advance every round, so the star center re-contacted the
        // same leaf forever (0, 3, 6, … ≡ 0 mod 3) and starved the others.
        let g = generators::star(4, 3).unwrap();
        let config = SimConfig::new(2)
            .mode(ExchangeMode::Blocking)
            .termination(Termination::FixedRounds(30));
        let mut recording = Recording {
            inner: RoundRobinFlood::new(&g),
            initiated: Vec::new(),
        };
        let _ = Simulation::new(&g, config).run(&mut recording);
        let center = NodeId::new(0);
        let contacted: std::collections::BTreeSet<NodeId> = recording
            .initiated
            .iter()
            .filter(|&&(from, _)| from == center)
            .map(|&(_, to)| to)
            .collect();
        assert_eq!(
            contacted.len(),
            3,
            "the center must rotate through all three leaves, got {contacted:?}"
        );
    }

    use rand::SeedableRng;
}
