//! The synchronous round engine.
//!
//! # Architecture: the snapshot-free, event-driven hot path
//!
//! The engine is built so that the per-round cost is `O(active nodes)`
//! protocol decisions plus work proportional to what actually *happens* —
//! never a rescan of global state, and never a decision loop over nodes that
//! have promised they cannot act:
//!
//! * **Acquisition logs.**  Alongside its rumor bitset, every node keeps an
//!   append-only log of the rumors it learned, in learn order.  A node's
//!   rumor set at any past instant is exactly a *prefix* of that log, so an
//!   exchange records only `(node, log length)` at initiation — an `O(1)`
//!   snapshot instead of an `O(n/64)` bitset clone — and a completion merges
//!   the peer's log prefix.  A per-edge watermark remembers how much of the
//!   peer's log already arrived over that edge, so repeated exchanges over
//!   the same edge never rescan old entries.
//! * **Interval-compressed, truncated logs.**  A log stores maximal stretches
//!   of consecutive rumor ids as single 8-byte runs ([`AcquisitionLog`]), so
//!   bursty acquisition orders — star hubs relaying `leaf 1, leaf 2, …`,
//!   all-to-all endgames copying whole prefixes — compress by orders of
//!   magnitude.  And because every snapshot in flight was taken at most
//!   `max_latency` rounds ago, only the trailing `max_latency + 1` rounds of
//!   each log are ever read: each node keeps a *delayed bitset shadow* — its
//!   rumor set as of the oldest possibly-outstanding snapshot — advanced
//!   lazily through a calendar ring, and log runs behind the shadow frontier
//!   are truncated.  A merge whose watermark falls at or behind the frontier
//!   unions the shadow bitset directly and replays only the retained tail.
//!   Together these break the old `Θ(Σ|final rumor sets|)` log-memory wall
//!   (~4 GB for all-to-all at 32768 nodes); the peak footprint is reported in
//!   [`RunReport::mem`](crate::report::MemStats).
//! * **Paged rumor sets + saturation collapse.**  Rumor sets are adaptive
//!   paged bitsets ([`RumorSet`]): 4096-bit pages stored sparsely, with a
//!   zero-allocation *full* sentinel for saturated pages, so per-node cost
//!   tracks what the node actually knows instead of the dense `n/8`-byte
//!   floor.  When a node's set goes full it collapses to the canonical
//!   page-free full representation, and one calendar lap later — once no
//!   outstanding snapshot can reference its history — the engine frees its
//!   shadow, truncates its entire log, and marks it *collapsed*: every
//!   future merge from it short-circuits to an `O(dst pages)` "peer is
//!   saturated" union, and its edges become merge-complete after one such
//!   union.  In the knowledge-saturating all-to-all regime this removes both
//!   the `2·n²/8` dense-bitset wall (~4.3 GB at 131072 nodes) and the
//!   endgame's redundant log replays.
//! * **Calendar queue.**  In-flight exchanges live in a ring of
//!   `max_latency + 1` buckets indexed by `completes_at % (max_latency + 1)`.
//!   Since every latency is in `1..=max_latency`, the bucket drained at the
//!   start of a round holds exactly the exchanges completing that round, in
//!   initiation order — delivery is `O(completions)`, not `O(in flight)`.
//! * **Event-driven active-set scheduling.**  Protocols report per-node
//!   quiescence through [`Protocol::activity`]: a node whose `on_round` just
//!   returned `None` and whose `activity` answers
//!   [`IdleUntilWoken`](Activity::IdleUntilWoken) or
//!   [`Quiescent`](Activity::Quiescent) leaves the engine's sorted active
//!   worklist and is simply never asked again — idle nodes re-join when an
//!   exchange incident to them completes (which is the only way their rumor
//!   set, `on_exchange` state, or Blocking-mode `can_initiate` flag can
//!   change) or when their saturation-collapse lap finishes; quiescent nodes
//!   are retired permanently.  The decision loop therefore costs
//!   `O(active)`, not `O(n)`, and the protocol contract (idle nodes would
//!   have returned `None` without touching the RNG) makes the skipped calls
//!   unobservable: reports stay byte-identical to an engine that asks every
//!   node every round.  When the worklist empties entirely while the
//!   calendar ring still holds in-flight exchanges or shadow/collapse laps,
//!   the round clock **fast-forwards** to the next non-empty bucket instead
//!   of spinning through empty rounds; `rounds_simulated`, `rounds_skipped`
//!   and the peak/final active-set size are reported in
//!   [`MemStats`](crate::report::MemStats).
//! * **Incremental termination.**  Counters (nodes with a full set, nodes
//!   knowing the tracked rumor, outstanding local-broadcast pairs) are
//!   updated inside the merge, so every [`Termination`] check is `O(1)`;
//!   `informed_times` is folded into the same path.
//! * **Flat latency discovery.**  Which endpoint has discovered which edge
//!   latency is a bitset with two bits per edge (one per endpoint); the
//!   latency itself is read from the graph.
//!
//! The previous snapshot-per-exchange implementation is preserved verbatim in
//! [`crate::reference`] and pinned against this engine by the
//! `engine_equivalence` integration suite: both must produce byte-identical
//! [`RunReport`]s and rumor states on the standard scenario grid.

use std::collections::HashMap;

use gossip_graph::{AliveView, EdgeId, Graph, Latency, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::fault::{self, FaultEvent, FaultPlan};
use crate::report::{FaultReport, MemStats, RunReport};
use crate::rumor::{self, AcquisitionLog, RumorId, RumorRun, RumorSet};

/// Whether a node may start a new exchange while one it initiated is still in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// The paper's main model: a node can initiate a new exchange every round.
    #[default]
    NonBlocking,
    /// A node must wait for its own in-flight exchange to complete before
    /// initiating another (used by the pattern-broadcast analysis, §4.2).
    Blocking,
}

/// When the simulation stops (in addition to the `max_rounds` safety cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// One-to-all dissemination: every node knows the rumor originating at the given node.
    AllKnowRumorOf(NodeId),
    /// All-to-all dissemination: every node's rumor set contains the full universe.
    AllKnowAll,
    /// Local broadcast restricted to edges of latency at most the bound:
    /// every node knows the rumor of every neighbor reachable over such an edge.
    LocalBroadcast(Latency),
    /// Run for exactly this many rounds.
    FixedRounds(u64),
    /// Stop when the protocol reports every node idle and no exchange is in flight.
    Quiescent,
}

/// Configuration of a [`Simulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    pub(crate) seed: u64,
    pub(crate) mode: ExchangeMode,
    pub(crate) termination: Termination,
    pub(crate) max_rounds: u64,
    pub(crate) latencies_known: bool,
    pub(crate) tracked_rumor: Option<RumorId>,
    pub(crate) shadow_min_truncate_runs: usize,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) threads: usize,
}

impl SimConfig {
    /// Creates a configuration with the given RNG seed, non-blocking
    /// exchanges, all-to-all termination, and a generous round cap.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            mode: ExchangeMode::NonBlocking,
            termination: Termination::AllKnowAll,
            max_rounds: 5_000_000,
            latencies_known: false,
            tracked_rumor: None,
            shadow_min_truncate_runs: 64,
            faults: None,
            threads: 1,
        }
    }

    /// Sets the exchange mode (non-blocking by default).
    pub fn mode(mut self, mode: ExchangeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the termination condition (all-to-all by default).
    pub fn termination(mut self, termination: Termination) -> Self {
        self.termination = termination;
        self
    }

    /// Sets the safety cap on the number of rounds.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Declares that nodes know the latencies of their incident edges from the
    /// start (Section 4 of the paper).  When `false` (the default), a latency
    /// is revealed to an endpoint only after an exchange over that edge completes.
    pub fn latencies_known(mut self, known: bool) -> Self {
        self.latencies_known = known;
        self
    }

    /// Tracks the per-node first time a specific rumor is learned (reported in
    /// [`RunReport::informed_times`]).
    pub fn track_rumor(mut self, rumor: RumorId) -> Self {
        self.tracked_rumor = Some(rumor);
        self
    }

    /// Tunes the lazy delayed-shadow machinery: a node's shadow bitset is
    /// materialised — and its acquisition log truncated — only once at least
    /// this many whole interval runs would be reclaimed, so short-lived or
    /// well-compressed logs never pay for a bitset.
    ///
    /// The default (64 runs, i.e. 512 bytes of log per bitset) is a pure
    /// memory/allocation trade-off: the setting has **no observable effect**
    /// on simulation results.  `0` forces a shadow for every node as soon as
    /// its frontier can advance; the equivalence suite uses that to exercise
    /// the truncated-log merge path on small graphs.
    pub fn shadow_compaction(mut self, min_truncate_runs: usize) -> Self {
        self.shadow_min_truncate_runs = min_truncate_runs;
        self
    }

    /// Attaches a deterministic fault schedule (crash-stop churn, link
    /// cuts, message loss — see [`FaultPlan`]) to the run.  The report then
    /// carries a [`FaultReport`](crate::FaultReport) with the
    /// graceful-degradation accounting, and termination conditions quantify
    /// over *alive* nodes only.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Number of worker threads for intra-run parallelism (default 1 =
    /// fully serial).  The per-round completion merges — and, under
    /// [`Simulation::run_sharded`], the decision pass too — are sharded
    /// across this many workers on the vendored rayon pool.
    ///
    /// Purely a wall-clock knob: every shard boundary is resolved by a
    /// deterministic reduction in shard order, so reports are
    /// **byte-identical for every setting** (pinned by the `engine_threads`
    /// suite).  Values are clamped to at least 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// The decision RNG stream for one `(round, node)` cell, derived from the
/// run seed by a splitmix64-style avalanche over the three coordinates.
///
/// Every engine (the sharded one, [`crate::reference`], and the dense
/// mid-size oracle) draws a node's round decision from this stream and from
/// nothing else, which is what makes the decision pass shardable: a worker
/// can decide any subset of nodes in any order without desynchronising the
/// draws of the others.  The historical single sequential stream would have
/// made every node's draw depend on how many draws every *earlier* node
/// consumed — unshardable without replaying the whole worklist.
pub(crate) fn decision_rng(seed: u64, round: u64, node: u32) -> SmallRng {
    let mut key = seed
        ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(node).wrapping_mul(0xD1B5_4A32_D192_ED03);
    // One avalanche pass decorrelates neighboring (round, node) cells before
    // `seed_from_u64` runs its own per-word splitmix expansion.
    key ^= key >> 30;
    key = key.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    key ^= key >> 27;
    key = key.wrapping_mul(0x94D0_49BB_1331_11EB);
    key ^= key >> 31;
    SmallRng::seed_from_u64(key)
}

/// Which endpoints have discovered which edge latencies: two bits per edge,
/// one per endpoint.  The latency value itself always comes from the graph.
#[derive(Debug)]
pub(crate) struct DiscoveredLatencies {
    bits: Vec<u64>,
}

impl DiscoveredLatencies {
    fn new(edge_count: usize) -> Self {
        DiscoveredLatencies {
            bits: vec![0; (2 * edge_count).div_ceil(64)],
        }
    }

    // gossip-lint: allow(panic-path): discovery bitmaps are sized 2 * edge_count at construction
    fn mark(&mut self, edge: EdgeId, second_endpoint: bool) {
        let i = edge.index() * 2 + second_endpoint as usize;
        self.bits[i / 64] |= 1 << (i % 64);
    }

    fn known(&self, edge: EdgeId, second_endpoint: bool) -> bool {
        let i = edge.index() * 2 + second_endpoint as usize;
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Forgets one endpoint's discovery of an edge latency (amnesiac
    /// rejoin: the rejoining node must re-learn its incident latencies).
    // gossip-lint: allow(panic-path): discovery bitmaps are sized 2 * edge_count at construction
    fn unmark(&mut self, edge: EdgeId, second_endpoint: bool) {
        let i = edge.index() * 2 + second_endpoint as usize;
        self.bits[i / 64] &= !(1 << (i % 64));
    }
}

/// Everything a protocol can see about one node at the start of a round.
#[derive(Debug)]
pub struct NodeView<'a> {
    /// The node being scheduled.
    pub node: NodeId,
    /// Current round (0-based).
    pub round: u64,
    /// The node's current rumor set.
    pub rumors: &'a RumorSet,
    /// Incident `(neighbor, edge)` pairs in neighbor-id order.
    pub neighbors: &'a [(NodeId, EdgeId)],
    /// `true` if the node may initiate an exchange this round
    /// (always true in non-blocking mode).
    pub can_initiate: bool,
    /// Number of exchanges this node initiated that are still in flight.
    pub pending_own: usize,
    pub(crate) latency_oracle: LatencyOracle<'a>,
}

#[derive(Debug)]
pub(crate) struct LatencyOracle<'a> {
    pub(crate) graph: &'a Graph,
    pub(crate) known_all: bool,
    pub(crate) source: OracleSource<'a>,
}

/// Where an oracle looks up per-node discovery state.  The engine uses the
/// flat bitset; the reference engine keeps the historical per-node maps.
#[derive(Debug)]
pub(crate) enum OracleSource<'a> {
    Flat {
        node: NodeId,
        discovered: &'a DiscoveredLatencies,
    },
    // gossip-lint: allow(unordered-iter): read via `map.get(&edge)` per query only, never iterated
    Map(&'a HashMap<EdgeId, Latency>),
}

impl NodeView<'_> {
    /// Latency of an incident edge, if this node is entitled to know it:
    /// either latencies are globally known ([`SimConfig::latencies_known`]) or
    /// an exchange over the edge has completed at this node.
    pub fn known_latency(&self, edge: EdgeId) -> Option<Latency> {
        if self.latency_oracle.known_all {
            return Some(self.latency_oracle.graph.latency(edge));
        }
        match self.latency_oracle.source {
            OracleSource::Map(map) => map.get(&edge).copied(),
            OracleSource::Flat { node, discovered } => {
                let graph = self.latency_oracle.graph;
                if edge.index() >= graph.edge_count() {
                    return None;
                }
                let rec = graph.edge(edge);
                let second = if node == rec.u {
                    false
                } else if node == rec.v {
                    true
                } else {
                    return None;
                };
                discovered.known(edge, second).then_some(rec.latency)
            }
        }
    }

    /// Number of nodes in the network (the paper assumes a polynomial upper
    /// bound on `n` is known; we expose the exact value for simplicity).
    pub fn network_size(&self) -> usize {
        self.latency_oracle.graph.node_count()
    }
}

/// A protocol's promise about a node's upcoming behavior, returned by
/// [`Protocol::activity`] and consumed by the engine's event-driven
/// scheduler.
///
/// The engine consults `activity` for a node only directly after that node's
/// [`on_round`](Protocol::on_round) returned `None` in the same round, with
/// the same [`NodeView`].  Anything other than [`Activity::Active`] is a
/// *binding promise* about future `on_round` calls — see the variants — that
/// lets the engine skip those calls entirely; because a skipped call would
/// have returned `None` without touching the RNG or the protocol state,
/// skipping is unobservable and all reports stay byte-identical to an engine
/// that asks every node every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activity {
    /// No promise: keep asking this node every round (the default, and the
    /// exact pre-scheduler behavior).
    #[default]
    Active,
    /// Until a *wake event* occurs at this node, every `on_round` call would
    /// return `None` without drawing from the RNG and without mutating the
    /// protocol.  The engine stops asking and re-activates the node on the
    /// next wake event.  Wake events at node `v` are:
    ///
    /// * an exchange incident to `v` completes — the only way `v`'s rumor
    ///   set can grow, [`on_exchange`](Protocol::on_exchange) can fire at
    ///   `v`, or `v`'s `pending_own` / Blocking-mode `can_initiate` state
    ///   can change;
    /// * `v`'s saturation-collapse lap finishes (an engine-internal event,
    ///   included so a protocol may key idleness off `view.rumors` becoming
    ///   full without tracking the collapse calendar itself);
    /// * an exchange `v` initiated is cancelled by a fault or times out lost
    ///   (its `pending_own` / Blocking-mode `can_initiate` state changed);
    /// * a fault event from a [`FaultPlan`](crate::FaultPlan) touches `v`'s
    ///   neighborhood: a neighbor crashes or rejoins, or an incident edge is
    ///   cut.
    IdleUntilWoken,
    /// The same promise, unconditionally and forever: no event can make this
    /// node act again.  The engine retires the node permanently — it is
    /// *not* re-activated by wake events — so this is only sound when the
    /// silence derives from irreversible state (a full rumor set, an
    /// isolated node, a finished program).
    ///
    /// **Fault events are outside this promise.**  A topology change from a
    /// [`FaultPlan`](crate::FaultPlan) (a neighbor crashing or rejoining, an
    /// incident edge cut) re-activates even quiescent survivors, because the
    /// irreversible state the promise derived from may no longer hold — an
    /// isolated node can gain its neighbor back through a rejoin.  A node
    /// whose quiescence really is irreversible (a full rumor set cannot
    /// shrink) simply returns `None` + `Quiescent` once more and is retired
    /// again.
    Quiescent,
}

/// A completed bidirectional exchange, as seen by one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeEvent {
    /// The other endpoint of the exchange.
    pub peer: NodeId,
    /// The edge the exchange used.
    pub edge: EdgeId,
    /// The latency of that edge (revealed by the completed exchange).
    pub latency: Latency,
    /// `true` if this endpoint initiated the exchange.
    pub initiated_here: bool,
    /// Round at which the exchange completed.
    pub round: u64,
}

/// A gossip protocol: per-round decisions plus completion callbacks.
///
/// The engine owns the rumor sets; a protocol only chooses which neighbor (if
/// any) each node contacts in each round.
pub trait Protocol {
    /// Human-readable protocol name (used in reports).
    fn name(&self) -> &'static str {
        "protocol"
    }

    /// Decides which neighbor `view.node` contacts this round, or `None` to stay silent.
    ///
    /// Returning a node that is not a neighbor is a schedule error: the
    /// engine rejects the exchange, reports it back through
    /// [`on_rejected`](Self::on_rejected), and counts it in
    /// [`RunReport::rejections`].
    fn on_round(&mut self, view: &NodeView<'_>, rng: &mut SmallRng) -> Option<NodeId>;

    /// Notification that `node`'s choice of `target` was rejected because
    /// `target` is not one of `node`'s neighbors.
    ///
    /// The default implementation treats this as a protocol bug: it fails a
    /// `debug_assert!` in debug builds (and is a no-op in release builds,
    /// where the rejection is still visible in [`RunReport::rejections`]).
    /// Protocols that probe the topology on purpose can override it.
    fn on_rejected(&mut self, node: NodeId, target: NodeId, round: u64) {
        debug_assert!(
            false,
            "protocol targeted non-neighbor {target:?} from {node:?} at round {round}"
        );
        let _ = (node, target, round);
    }

    /// Notification that an exchange incident to `node` completed.
    fn on_exchange(&mut self, node: NodeId, event: &ExchangeEvent) {
        let _ = (node, event);
    }

    /// Whether this node has finished its program (used by [`Termination::Quiescent`]).
    fn is_idle(&self, node: NodeId) -> bool {
        let _ = node;
        false
    }

    /// The node's quiescence promise, consulted by the event-driven
    /// scheduler directly after an [`on_round`](Self::on_round) call that
    /// returned `None` (with the same `view`).
    ///
    /// The default returns [`Activity::Active`], which makes no promise:
    /// the engine keeps asking the node every round, so **third-party
    /// protocols that do not override this method keep the exact
    /// pre-scheduler behavior** — every node is consulted every round and no
    /// rounds are skipped.
    ///
    /// Overriding implementations must uphold the contract documented on
    /// [`Activity`]: while idle or quiescent, any `on_round` call the engine
    /// elides would have returned `None` without drawing from the RNG and
    /// without mutating the protocol.  Violating the contract desynchronises
    /// the run from the reference semantics (and from the same protocol run
    /// under [`crate::reference::ReferenceSimulation`], which still asks
    /// every node every round).
    // gossip-audit: contract(pure)
    fn activity(&self, view: &NodeView<'_>) -> Activity {
        let _ = view;
        Activity::Active
    }
}

/// A [`Protocol`] whose per-round decisions can be partitioned by node, so
/// [`Simulation::run_sharded`] can split the sorted active worklist into
/// contiguous node-range shards and run them concurrently, one worker each.
///
/// # Contract
///
/// For every node `v` in shard `k`'s range, `shard_on_round(&mut shards[k],
/// view, rng)` must behave exactly as `on_round(&mut self, view, rng)`
/// would, and [`shard_activity`](Self::shard_activity) exactly as
/// [`Protocol::activity`].  A shard is a reborrow of the protocol's
/// decision state restricted to its node range, so a decision for `v` can
/// only read or write state belonging to `v` — which is precisely what
/// makes the passes interchangeable: each node's RNG stream is
/// independently derived from `(seed, round, node)`, outcomes are applied
/// by the engine in worklist order regardless of which worker produced
/// them, and no decision can observe another node's same-round decision.
///
/// Protocols that need cross-node `on_round` mutations visible within a
/// round cannot implement this faithfully and should stay on
/// [`Simulation::run`] (which never shards decisions).  [`Protocol::on_exchange`]
/// and [`Protocol::on_rejected`] are unaffected — the engine always calls
/// them serially, on `&mut self`.
pub trait ShardedProtocol: Protocol {
    /// Borrowed per-node decision state of one contiguous node-range shard.
    type Shard<'s>: Send
    where
        Self: 's;

    /// Splits the decision state at the given node-id cut points
    /// (`cuts[0] == 0`, `cuts.last() == n`, strictly increasing): shard `k`
    /// owns nodes `cuts[k] .. cuts[k+1]` and the returned vector has one
    /// entry per adjacent pair.
    fn decision_shards<'s>(&'s mut self, cuts: &[u32]) -> Vec<Self::Shard<'s>>;

    /// Shard-scoped [`Protocol::on_round`] (an associated function — shards
    /// of `self` are live across workers while it runs).
    fn shard_on_round(
        shard: &mut Self::Shard<'_>,
        view: &NodeView<'_>,
        rng: &mut SmallRng,
    ) -> Option<NodeId>;

    /// Shard-scoped [`Protocol::activity`], under the same purity contract.
    // gossip-audit: contract(pure)
    fn shard_activity(shard: &Self::Shard<'_>, view: &NodeView<'_>) -> Activity;
}

/// Outcome of one node's decision call, recorded by the decision pass and
/// applied by the serial initiation epilogue in worklist order.
#[derive(Debug, Clone, Copy)]
enum Decide {
    /// The node crashed while queued: drop it from the worklist (its state
    /// is already `Quiescent`; a rejoin force-wake re-admits it).
    Dead,
    /// `on_round` returned `None`; the activity answer drives scheduling.
    Silent(Activity),
    /// The node wants to contact this target.
    Target(NodeId),
}

/// Read-only inputs of one round's decision pass — everything a
/// [`NodeView`] is built from.  Shared by both drivers and across decision
/// shards (workers only read it).
struct DecisionCtx<'a> {
    graph: &'a Graph,
    rumors: &'a [RumorSet],
    alive: Option<&'a AliveView>,
    discovered: &'a DiscoveredLatencies,
    pending_own: &'a [usize],
    mode: ExchangeMode,
    latencies_known: bool,
    seed: u64,
    round: u64,
    threads: usize,
}

impl<'a> DecisionCtx<'a> {
    fn is_dead(&self, node: NodeId) -> bool {
        self.alive.is_some_and(|av| !av.is_node_alive(node))
    }

    // gossip-lint: allow(panic-path): node indices come from the sorted worklist, bounded by n
    fn view(&self, node: NodeId) -> NodeView<'a> {
        let i = node.index();
        NodeView {
            node,
            round: self.round,
            rumors: &self.rumors[i],
            neighbors: match self.alive {
                Some(av) => av.neighbor_slice(self.graph, node),
                None => self.graph.neighbor_slice(node),
            },
            can_initiate: match self.mode {
                ExchangeMode::NonBlocking => true,
                ExchangeMode::Blocking => self.pending_own[i] == 0,
            },
            pending_own: self.pending_own[i],
            latency_oracle: LatencyOracle {
                graph: self.graph,
                known_all: self.latencies_known,
                source: OracleSource::Flat {
                    node,
                    discovered: self.discovered,
                },
            },
        }
    }
}

/// Strategy for the per-round decision pass: the serial driver calls
/// [`Protocol::on_round`] on `&mut P` in worklist order; the sharded driver
/// fans contiguous worklist shards out to workers via [`ShardedProtocol`].
/// Both record one [`Decide`] per worklist entry, and the engine applies
/// them through the same serial epilogue in worklist order — so the drivers
/// are byte-identical for any protocol implementing both traits faithfully.
trait DecisionDriver<P> {
    fn decide(protocol: &mut P, ctx: &DecisionCtx<'_>, worklist: &[u32], out: &mut Vec<Decide>);
}

/// Evaluates one node under the decision contract shared by both drivers:
/// dead nodes short-circuit to [`Decide::Dead`]; everyone else gets a view
/// and its own `(seed, round, node)` RNG stream, and `f` maps the protocol
/// answer to a decision.
fn decide_node(
    ctx: &DecisionCtx<'_>,
    u: u32,
    f: impl FnOnce(&NodeView<'_>, &mut SmallRng) -> Decide,
) -> Decide {
    let node = NodeId::new(u as usize);
    if ctx.is_dead(node) {
        return Decide::Dead;
    }
    let view = ctx.view(node);
    let mut rng = decision_rng(ctx.seed, ctx.round, u);
    f(&view, &mut rng)
}

/// Serial decision pass — the plain [`Protocol`] path of [`Simulation::run`].
enum SerialDecisions {}

impl<P: Protocol> DecisionDriver<P> for SerialDecisions {
    fn decide(protocol: &mut P, ctx: &DecisionCtx<'_>, worklist: &[u32], out: &mut Vec<Decide>) {
        for &u in worklist {
            out.push(decide_node(ctx, u, |view, rng| {
                match protocol.on_round(view, rng) {
                    Some(target) => Decide::Target(target),
                    None => Decide::Silent(protocol.activity(view)),
                }
            }));
        }
    }
}

/// Minimum worklist length before the decision pass fans out to worker
/// threads (below it, shard setup costs more than it saves — purely a
/// wall-clock knob, like [`MIN_PAR_TASKS`]).
const MIN_PAR_DECISIONS: usize = 256;

/// Sharded decision pass over contiguous worklist shards — the
/// [`ShardedProtocol`] path of [`Simulation::run_sharded`].
enum ShardedDecisions {}

impl<P: ShardedProtocol> DecisionDriver<P> for ShardedDecisions {
    // gossip-lint: allow(panic-path): chunk bounds derive from div_ceil over the worklist length
    fn decide(protocol: &mut P, ctx: &DecisionCtx<'_>, worklist: &[u32], out: &mut Vec<Decide>) {
        if worklist.is_empty() {
            return;
        }
        let shard_count = if ctx.threads <= 1 || worklist.len() < MIN_PAR_DECISIONS {
            1
        } else {
            ctx.threads.min(worklist.len())
        };
        let per = worklist.len().div_ceil(shard_count);
        let shard_count = worklist.len().div_ceil(per);
        let mut cuts: Vec<u32> = Vec::with_capacity(shard_count + 1);
        cuts.push(0);
        for k in 1..shard_count {
            // First node of chunk k; the worklist is sorted, so chunk k's
            // nodes all fall in `cuts[k] .. cuts[k+1]`.
            cuts.push(worklist[k * per]);
        }
        cuts.push(ctx.graph.node_count() as u32);
        let shards = protocol.decision_shards(&cuts);
        debug_assert_eq!(shards.len(), shard_count, "one shard per cut interval");
        let jobs: Vec<(&[u32], P::Shard<'_>)> = shards
            .into_iter()
            .enumerate()
            .map(|(k, shard)| {
                let lo = k * per;
                let hi = ((k + 1) * per).min(worklist.len());
                (&worklist[lo..hi], shard)
            })
            .collect();
        let results = run_jobs(ctx.threads, jobs, |(chunk, mut shard)| {
            let mut decides = Vec::with_capacity(chunk.len());
            for &u in chunk {
                decides.push(decide_node(ctx, u, |view, rng| {
                    match P::shard_on_round(&mut shard, view, rng) {
                        Some(target) => Decide::Target(target),
                        None => Decide::Silent(P::shard_activity(&shard, view)),
                    }
                }));
            }
            decides
        });
        for chunk in results {
            out.extend_from_slice(&chunk);
        }
    }
}

/// An in-flight exchange: its endpoints plus the `O(1)` snapshot of what each
/// endpoint knew at initiation — the length of its acquisition log.
struct Flight {
    initiator: NodeId,
    responder: NodeId,
    edge: EdgeId,
    /// Initiator's log length at initiation time.
    initiator_known: u32,
    /// Responder's log length at initiation time.
    responder_known: u32,
    /// Lost in transit ([`FaultPlan::message_loss`]): occupies the
    /// initiator's slot until the completion round, then times out silently
    /// — no merge, no discovery, no `on_exchange`.
    lost: bool,
}

/// Scheduler-side view of one node, maintained by the engine (the protocol's
/// [`Activity`] answers drive the transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// In the active worklist; consulted every round.
    Active,
    /// Out of the worklist; re-activated by the next wake event.
    Idle,
    /// Retired permanently; never consulted or woken again.
    Quiescent,
}

/// Force-wakes a node on a fault event: unlike ordinary wake events (which
/// only re-activate [`NodeState::Idle`] nodes), fault events re-activate even
/// [`NodeState::Quiescent`] nodes — see [`Activity::Quiescent`], whose
/// retirement promise excludes topology changes.  Re-waking an already-woken
/// node is a no-op (it is already `Active` and queued).
// gossip-lint: allow(panic-path): node_state is sized n at construction; node ids are dense
fn force_wake(node_state: &mut [NodeState], woken: &mut Vec<u32>, i: usize) {
    if node_state[i] != NodeState::Active {
        node_state[i] = NodeState::Active;
        woken.push(i as u32);
    }
}

/// The next round strictly after `round` at which any calendar bucket fires:
/// in-flight exchange completions (`calendar`) or queued shadow/collapse
/// laps (`shadow_ring`).  Both rings map a fire time `t` to bucket
/// `t % ring_len`, and every queued entry fires within one lap, so bucket
/// `b` fires at the unique `t ∈ (round, round + ring_len]` with
/// `t ≡ b (mod ring_len)` — including the wraparound case `b == round %
/// ring_len`, which (being already drained for the current round) can only
/// mean `t = round + ring_len`.
// gossip-lint: allow(panic-path): ring_len >= 1 always (max latency + 1), so the modulus is never zero
fn next_event_round(
    round: u64,
    ring_len: usize,
    calendar: &[Vec<Flight>],
    shadow_ring: &[Vec<(u32, u32, u32)>],
) -> Option<u64> {
    let cur = (round % ring_len as u64) as usize;
    let mut best: Option<u64> = None;
    for (b, (flights, advances)) in calendar.iter().zip(shadow_ring).enumerate() {
        if flights.is_empty() && advances.is_empty() {
            continue;
        }
        let delta = match (b + ring_len - cur) % ring_len {
            0 => ring_len as u64,
            d => d as u64,
        };
        let t = round + delta;
        best = Some(best.map_or(t, |prev| prev.min(t)));
    }
    best
}

/// Deterministic memory accounting of the dissemination state (the source of
/// [`MemStats`]): counters, not allocator probes, so gates built on them are
/// reproducible across machines.
#[derive(Default)]
struct MemCounters {
    /// Currently retained interval runs, summed over all logs.
    live_runs: u64,
    /// Peak of `live_runs` over the run so far.
    peak_runs: u64,
    /// 64-bit words currently held by materialised shadow bitsets
    /// (saturation collapse frees a node's shadow).
    shadow_words_live: u64,
    /// Peak of `shadow_words_live` over the run so far.
    shadow_words_peak: u64,
    /// Total runs reclaimed by shadow-frontier truncation and saturation
    /// collapse.
    truncated_runs: u64,
    /// Number of shadow-frontier advancements.
    shadow_advances: u64,
    /// Dense rumor-set pages currently allocated, summed over all nodes
    /// (sampled at merge boundaries; empty and full sentinel pages are free).
    pages_live: u64,
    /// Peak of `pages_live` over the run so far.
    pages_peak: u64,
    /// Nodes whose log and shadow were freed by saturation collapse.
    collapsed_nodes: u64,
}

impl MemCounters {
    /// Applies a dense-page delta observed across one merge.
    fn record_page_delta(&mut self, before: usize, after: usize) {
        self.pages_live += after as u64;
        self.pages_live -= before as u64;
        self.pages_peak = self.pages_peak.max(self.pages_live);
    }

    /// Folds one shard's dense-page trace into the live/peak counters.
    /// Must be applied in shard order — the trace composition law makes the
    /// result independent of where the shard cuts fell, but not of the order
    /// the shards are folded in.
    fn apply_page_trace(&mut self, trace: PageTrace) {
        let live = self.pages_live as i64;
        self.pages_peak = self.pages_peak.max((live + trace.max_prefix.max(0)) as u64);
        self.pages_live = (live + trace.delta) as u64;
    }
}

/// One resolved merge obligation of a delivery phase: union `src`'s log
/// positions `start..upto` into `dst`'s rumor state.  Resolved serially
/// against the per-edge watermarks (in flight order), then executed in the
/// canonical order — ascending `dst`, flight order within one `dst` — by
/// [`Progress::merge_completions`].
#[derive(Debug, Clone, Copy)]
struct MergeTask {
    dst: u32,
    src: u32,
    start: u32,
    upto: u32,
}

/// Order-preserving summary of one shard's dense-page allocation walk: the
/// net page delta plus the maximum running prefix delta (page counts can
/// *drop* mid-walk when a dense page saturates to the free full sentinel, so
/// a plain max of deltas would not reproduce the serial peak).
///
/// Composition law: for traces `a` then `b`,
/// `a ∘ b = { delta: a.delta + b.delta, max_prefix: max(a.max_prefix,
/// a.delta + b.max_prefix) }` — associative with identity `default()`, so
/// folding per-shard traces in shard order reproduces exactly the peak the
/// canonical serial walk observes, wherever the shard cuts fall.
#[derive(Debug, Clone, Copy, Default)]
struct PageTrace {
    delta: i64,
    max_prefix: i64,
}

impl PageTrace {
    /// Records one task's page delta (the serial walk's
    /// [`MemCounters::record_page_delta`], replayed at reduction time).
    fn record(&mut self, before: usize, after: usize) {
        self.delta += after as i64 - before as i64;
        self.max_prefix = self.max_prefix.max(self.delta);
    }
}

/// Phase A output of one merge shard: every rumor newly learned by the
/// shard's destinations, as maximal consecutive-id runs.
struct MergeShardNew {
    /// New runs flattened in task order; `run_counts[k]` of them belong to
    /// the shard's `k`-th task.  (Flattened per shard, not per task, so a
    /// phase's allocation count is `O(shards)`, not `O(tasks)`.)
    runs: Vec<RumorRun>,
    run_counts: Vec<u32>,
    pages: PageTrace,
}

/// Phase B output of one merge shard: pure counter deltas, folded into the
/// global termination counters in shard order.
#[derive(Default)]
struct MergeShardDelta {
    /// Runs physically appended to acquisition logs (`live_runs` delta).
    appended_runs: u64,
    full_nodes: usize,
    source_known_by: usize,
    lb_deficit_sub: u64,
    /// Destinations that learned at least one rumor, ascending.
    changed: Vec<u32>,
}

/// Phase A of the sharded completion merge: unions each task's source prefix
/// into the destination's paged rumor set, collecting the newly learned
/// rumors.  A shard owns a contiguous destination range (its `rumors` slice,
/// offset by `base`) and its tasks are already in canonical order, so the
/// in-shard walk *is* the canonical serial walk restricted to that range;
/// everything else is only read.
// gossip-lint: allow(panic-path): task indices are bounded by the shard partition invariants
fn merge_shard_phase_a(
    tasks: &[MergeTask],
    base: usize,
    rumors: &mut [RumorSet],
    logs: &[AcquisitionLog],
    shadows: &[Vec<u64>],
    shadow_len: &[u32],
    collapsed: &[bool],
) -> MergeShardNew {
    let mut out = MergeShardNew {
        runs: Vec::new(),
        run_counts: Vec::with_capacity(tasks.len()),
        pages: PageTrace::default(),
    };
    // Per-task scratch: new runs must be collected per task (the flat buffer
    // would otherwise coalesce id-adjacent runs across task — and therefore
    // destination — boundaries).
    let mut scratch: Vec<RumorRun> = Vec::new();
    for t in tasks {
        let si = t.src as usize;
        let dst_set = &mut rumors[t.dst as usize - base];
        if dst_set.is_full() {
            // Saturated by an earlier same-destination task this phase: the
            // union is a guaranteed no-op, exactly like the serial engine's
            // `counts >= universe` skip at task time.
            out.run_counts.push(0);
            continue;
        }
        scratch.clear();
        let pages_before = dst_set.live_pages();
        if collapsed[si] {
            // Saturation-collapsed peer: every snapshot of it still in
            // flight was taken after it saturated (that is the collapse
            // precondition), so the prefix is the whole universe.
            debug_assert_eq!(t.upto as usize, dst_set.universe());
            dst_set.insert_all(&mut scratch);
        } else {
            let frontier = shadow_len[si];
            if t.start < frontier {
                // Invariant: a nonzero frontier implies a materialised
                // shadow holding exactly the first `frontier` log entries.
                dst_set.union_words_collect_new_runs(&shadows[si], &mut scratch);
            }
            logs[si].for_each_segment(t.start.max(frontier), t.upto, |first, len| {
                dst_set.insert_run(first, len, &mut scratch);
            });
        }
        out.pages.record(pages_before, dst_set.live_pages());
        out.run_counts.push(scratch.len() as u32);
        out.runs.extend_from_slice(&scratch);
    }
    out
}

/// Phase B of the sharded completion merge: appends each task's new runs to
/// the destination's acquisition log and folds every termination counter the
/// runs touch into a per-shard delta.  The shard's `logs` / `counts` /
/// `informed_times` slices start at destination `base`; `rumors` is the full
/// slice, only read (for the per-destination universe).
#[allow(clippy::too_many_arguments)]
// gossip-lint: allow(panic-path): task indices are bounded by the shard partition invariants
fn merge_shard_phase_b(
    tasks: &[MergeTask],
    new: &MergeShardNew,
    base: usize,
    rumors: &[RumorSet],
    logs: &mut [AcquisitionLog],
    counts: &mut [usize],
    mut informed_times: Option<&mut [Option<u64>]>,
    graph: &Graph,
    alive: Option<&AliveView>,
    source_rumor: Option<RumorId>,
    tracked: Option<RumorId>,
    lb_bound: Option<Latency>,
    round: u64,
) -> MergeShardDelta {
    let mut delta = MergeShardDelta::default();
    let mut cursor = 0usize;
    for (k, t) in tasks.iter().enumerate() {
        let count = new.run_counts[k] as usize;
        let task_runs = &new.runs[cursor..cursor + count];
        cursor += count;
        if count == 0 {
            continue;
        }
        let di = t.dst as usize;
        let li = di - base;
        if delta.changed.last() != Some(&t.dst) {
            delta.changed.push(t.dst);
        }
        let universe = rumors[di].universe();
        for &(first, len) in task_runs {
            if logs[li].push_run(first, len) {
                delta.appended_runs += 1;
            }
            counts[li] += len as usize;
            if counts[li] == universe {
                delta.full_nodes += 1;
            }
            let run_contains =
                |r: RumorId| r.0 >= first.0 && u64::from(r.0) < u64::from(first.0) + u64::from(len);
            if source_rumor.is_some_and(run_contains) {
                delta.source_known_by += 1;
            }
            if tracked.is_some_and(run_contains) {
                if let Some(informed) = informed_times.as_deref_mut() {
                    if informed[li].is_none() {
                        informed[li] = Some(round);
                    }
                }
            }
            if let Some(bound) = lb_bound {
                let nbrs = graph.neighbor_slice(NodeId::new(di));
                let node_count = graph.node_count();
                for j in first.index()..(first.index() + len as usize).min(node_count) {
                    if let Ok(pos) = nbrs.binary_search_by_key(&NodeId::new(j), |&(w, _)| w) {
                        let (w, e) = nbrs[pos];
                        // A `(dst, w)` pair is only outstanding — and was only
                        // counted — while `w` is alive and the edge un-cut
                        // (crash/cut events retire such pairs eagerly).
                        if graph.latency(e) <= bound
                            && alive.is_none_or(|a| a.is_node_alive(w) && a.is_edge_alive(e))
                        {
                            delta.lb_deficit_sub += 1;
                        }
                    }
                }
            }
        }
    }
    delta
}

/// Cuts `tasks` (sorted by destination) into at most `max_shards` contiguous
/// ranges of roughly equal length whose destination sets are disjoint — a
/// cut never splits one destination's task group, so every destination's
/// state is owned by exactly one shard.  Returns each shard's end index.
///
/// The cut positions depend on `max_shards` (i.e. on the thread count), but
/// never the results: phase outputs are reduced in shard order, and
/// concatenating per-shard walks of a sorted task list in shard order is the
/// canonical serial walk regardless of where the cuts fall.
// gossip-lint: allow(panic-path): hi is only indexed while strictly below tasks.len(), and hi >= 1 inside the loop
fn partition_tasks(tasks: &[MergeTask], max_shards: usize) -> Vec<usize> {
    let mut ends = Vec::with_capacity(max_shards);
    let target = tasks.len().div_ceil(max_shards.max(1));
    let mut lo = 0usize;
    while lo < tasks.len() {
        let mut hi = (lo + target).min(tasks.len());
        while hi < tasks.len() && tasks[hi].dst == tasks[hi - 1].dst {
            hi += 1;
        }
        ends.push(hi);
        lo = hi;
    }
    ends
}

/// Minimum per-phase work before a pass fans out to worker threads; below
/// it, shard setup costs more than it saves.  Purely a wall-clock knob — the
/// single-shard path runs the identical canonical walk.
const MIN_PAR_TASKS: usize = 64;

/// Executes independent shard jobs, fanned out on the vendored rayon pool
/// when more than one worker is configured.  Results come back in job order
/// (rayon's indexed `collect`), so callers can reduce them deterministically
/// in shard order; with one worker (or one job) the jobs run inline on the
/// calling thread in the same order.
fn run_jobs<T: Send, R: Send>(threads: usize, jobs: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .install(|| jobs.into_par_iter().map(f).collect())
}

/// Incrementally maintained dissemination state: interval-compressed
/// acquisition logs, delayed bitset shadows, plus the counters that make
/// every termination check `O(1)`.
struct Progress<'g> {
    graph: &'g Graph,
    /// Per-node acquisition log: every rumor the node knows, in learn order,
    /// run-length-compressed and truncated behind the shadow frontier.
    logs: Vec<AcquisitionLog>,
    /// Per-node delayed shadow: the bitset of the node's first
    /// `shadow_len[i]` log entries.  Lazily materialised (empty = none, which
    /// implies `shadow_len[i] == 0`).
    shadows: Vec<Vec<u64>>,
    /// Per-node shadow frontier, as an absolute log position.  Invariant:
    /// every snapshot still in flight from node `i` covers at least this
    /// prefix, so log entries below it are never read again.
    shadow_len: Vec<u32>,
    /// Per-node saturation-collapse flag: the node's rumor set is full, every
    /// possibly-outstanding snapshot of it covers the whole universe, and its
    /// log and shadow have been freed.  Merges from such a node short-circuit
    /// to an `O(pages)` "peer is saturated" union.
    collapsed: Vec<bool>,
    /// `logs[i].len()`, cached as a plain counter (== rumor-set size).
    counts: Vec<usize>,
    /// Number of nodes whose rumor set is full.
    full_nodes: usize,
    /// Rumor whose spread decides [`Termination::AllKnowRumorOf`], if any.
    source_rumor: Option<RumorId>,
    /// Number of nodes that know `source_rumor`.
    source_known_by: usize,
    /// Latency bound of [`Termination::LocalBroadcast`], if any.
    lb_bound: Option<Latency>,
    /// Outstanding `(node, fast neighbor)` pairs for local broadcast.
    lb_deficit: u64,
    /// Rumor tracked for [`RunReport::informed_times`], if any.
    tracked: Option<RumorId>,
    /// Per-node first round the tracked rumor was known (empty if untracked).
    informed_times: Vec<Option<u64>>,
    /// Rejoined nodes still re-disseminating: `(node, rejoin round)` pairs,
    /// removed once the node recovers (or crashes again).  Only ever
    /// non-empty under a fault plan with rejoins, and holds at most the
    /// currently-unrecovered rejoiners — scanning it per changing merge is
    /// effectively free.
    pending_recovery: Vec<(u32, u64)>,
    /// Worst observed re-dissemination latency over recovered rejoiners
    /// ([`FaultReport::recovery_latency`]).
    recovery_latency: Option<u64>,
    mem: MemCounters,
}

/// Counters of applied fault events (the injection half of
/// [`FaultReport`]; the degradation half is computed from final state).
#[derive(Default)]
struct FaultTally {
    crashes: u64,
    rejoins: u64,
    links_cut: u64,
    cancelled: u64,
    lost: u64,
}

impl<'g> Progress<'g> {
    // gossip-lint: allow(panic-path): initial rumor vec length is asserted to equal n
    fn new(graph: &'g Graph, config: &SimConfig, rumors: &[RumorSet]) -> Self {
        let source_rumor = match config.termination {
            Termination::AllKnowRumorOf(source) => Some(RumorId::of_node(source)),
            _ => None,
        };
        let lb_bound = match config.termination {
            Termination::LocalBroadcast(bound) => Some(bound),
            _ => None,
        };
        let lb_deficit = lb_bound.map_or(0, |bound| {
            graph
                .nodes()
                .map(|v| {
                    graph
                        .neighbors(v)
                        .filter(|&(w, e)| {
                            graph.latency(e) <= bound
                                && !rumors[v.index()].contains(RumorId::of_node(w))
                        })
                        .count() as u64
                })
                .sum()
        });
        let logs: Vec<AcquisitionLog> = rumors.iter().map(AcquisitionLog::from_set).collect();
        let live_runs: u64 = logs.iter().map(|l| l.retained_runs() as u64).sum();
        let pages_live: u64 = rumors.iter().map(|s| s.live_pages() as u64).sum();
        let n = rumors.len();
        Progress {
            graph,
            logs,
            shadows: vec![Vec::new(); n],
            shadow_len: vec![0; n],
            collapsed: vec![false; n],
            counts: rumors.iter().map(RumorSet::len).collect(),
            full_nodes: rumors.iter().filter(|s| s.is_full()).count(),
            source_rumor,
            source_known_by: source_rumor
                .map_or(0, |r| rumors.iter().filter(|s| s.contains(r)).count()),
            lb_bound,
            lb_deficit,
            tracked: config.tracked_rumor,
            informed_times: match config.tracked_rumor {
                Some(r) => rumors
                    .iter()
                    .map(|s| if s.contains(r) { Some(0) } else { None })
                    .collect(),
                None => Vec::new(),
            },
            pending_recovery: Vec::new(),
            recovery_latency: None,
            mem: MemCounters {
                live_runs,
                peak_runs: live_runs,
                pages_live,
                pages_peak: pages_live,
                ..MemCounters::default()
            },
        }
    }

    /// Executes a delivery phase's resolved merge tasks in the **canonical
    /// merge order** — ascending destination, flight order within one
    /// destination — sharded by destination across `threads` workers on the
    /// vendored rayon pool.  Pushes every destination that learned at least
    /// one rumor onto `changed`, ascending.
    ///
    /// Each task unions `src`'s log prefix `start..upto` into `dst`.  The
    /// prefix is served from three sources: a saturation-collapsed `src` is
    /// unioned as "the full universe" in `O(dst pages)` (its log and shadow
    /// are long gone — every outstanding snapshot of it covers everything,
    /// so the complement of what `dst` knows *is* the delta); otherwise
    /// positions below `src`'s shadow frontier come from the shadow bitset
    /// (one word-OR sweep) and the retained tail is replayed run by run.
    ///
    /// # Why sharding cannot change the result
    ///
    /// * **Reordering to canonical order is sound.**  Within one phase,
    ///   merges into *different* destinations touch disjoint rumor state,
    ///   and a destination's tasks keep their flight order (the sort is
    ///   stable).  Snapshots are taken only on round boundaries, after the
    ///   phase has fully landed, so no in-phase interleaving is observable.
    ///   (The per-merge insertion order already differed from the reference
    ///   engine — shadow and saturated-peer unions yield ascending rumor
    ///   ids, not learn order — for exactly this reason; `engine_equivalence`
    ///   pins it.)
    /// * **Shard cuts fall only between destinations** ([`partition_tasks`]),
    ///   so phase A mutates disjoint `rumors` slices and phase B disjoint
    ///   `logs`/`counts`/`informed_times` slices; everything else is read
    ///   shared.  No shard ever observes another's writes.
    /// * **Reductions replay the serial walk.**  Counter deltas are summed
    ///   in shard order; the dense-page peak uses the [`PageTrace`]
    ///   composition law; the appended-runs peak needs only the phase total
    ///   (`live_runs` is monotone non-decreasing within a phase).  All are
    ///   independent of the cut positions, hence of the thread count.
    ///
    /// The two phases are separated by a barrier: phase B appends to
    /// `logs[dst]` while phase A *reads* `logs[src]`, and any `src` may be
    /// another shard's `dst`.
    // gossip-lint: allow(panic-path): shard end indices come from partition_tasks over the same task slice, and per-shard vectors are built one entry per shard
    fn merge_completions(
        &mut self,
        rumors: &mut [RumorSet],
        tasks: &mut [MergeTask],
        round: u64,
        alive: Option<&AliveView>,
        threads: usize,
        changed: &mut Vec<u32>,
    ) {
        if tasks.is_empty() {
            return;
        }
        // Stable: tasks into one destination keep their flight order.
        tasks.sort_by_key(|t| t.dst);
        let shard_count = if threads <= 1 || tasks.len() < MIN_PAR_TASKS {
            1
        } else {
            threads
        };
        let ends = partition_tasks(tasks, shard_count);
        let n = rumors.len();

        let Progress {
            graph,
            logs,
            shadows,
            shadow_len,
            collapsed,
            counts,
            full_nodes,
            source_rumor,
            source_known_by,
            lb_bound,
            lb_deficit,
            tracked,
            informed_times,
            mem,
            ..
        } = self;
        let (source_rumor, tracked, lb_bound) = (*source_rumor, *tracked, *lb_bound);

        // Phase A: union prefixes into the destinations' paged rumor sets.
        struct PhaseAJob<'a> {
            tasks: &'a [MergeTask],
            base: usize,
            rumors: &'a mut [RumorSet],
        }
        let new_runs: Vec<MergeShardNew> = {
            let (logs, shadows, shadow_len, collapsed) =
                (&**logs, &**shadows, &**shadow_len, &**collapsed);
            let mut jobs: Vec<PhaseAJob<'_>> = Vec::with_capacity(ends.len());
            let mut rest: &mut [RumorSet] = rumors;
            let mut base = 0usize;
            let mut task_lo = 0usize;
            for (k, &task_hi) in ends.iter().enumerate() {
                let dst_hi = if k + 1 < ends.len() {
                    tasks[task_hi].dst as usize
                } else {
                    n
                };
                let (mine, tail) = rest.split_at_mut(dst_hi - base);
                jobs.push(PhaseAJob {
                    tasks: &tasks[task_lo..task_hi],
                    base,
                    rumors: mine,
                });
                rest = tail;
                base = dst_hi;
                task_lo = task_hi;
            }
            run_jobs(threads, jobs, |job| {
                merge_shard_phase_a(
                    job.tasks, job.base, job.rumors, logs, shadows, shadow_len, collapsed,
                )
            })
        };

        // Phase B: append the new runs to the destinations' logs and reduce
        // the counter deltas in shard order.
        struct PhaseBJob<'a> {
            tasks: &'a [MergeTask],
            new: &'a MergeShardNew,
            base: usize,
            logs: &'a mut [AcquisitionLog],
            counts: &'a mut [usize],
            informed_times: Option<&'a mut [Option<u64>]>,
        }
        let deltas: Vec<MergeShardDelta> = {
            let rumors = &*rumors;
            let graph: &Graph = graph;
            let mut jobs: Vec<PhaseBJob<'_>> = Vec::with_capacity(ends.len());
            let mut logs_rest: &mut [AcquisitionLog] = logs;
            let mut counts_rest: &mut [usize] = counts;
            let mut informed_rest: Option<&mut [Option<u64>]> =
                tracked.is_some().then_some(&mut informed_times[..]);
            let mut base = 0usize;
            let mut task_lo = 0usize;
            for (k, &task_hi) in ends.iter().enumerate() {
                let dst_hi = if k + 1 < ends.len() {
                    tasks[task_hi].dst as usize
                } else {
                    n
                };
                let (logs_mine, logs_tail) = logs_rest.split_at_mut(dst_hi - base);
                let (counts_mine, counts_tail) = counts_rest.split_at_mut(dst_hi - base);
                let (informed_mine, informed_tail) = match informed_rest {
                    Some(slice) => {
                        let (a, b) = slice.split_at_mut(dst_hi - base);
                        (Some(a), Some(b))
                    }
                    None => (None, None),
                };
                jobs.push(PhaseBJob {
                    tasks: &tasks[task_lo..task_hi],
                    new: &new_runs[k],
                    base,
                    logs: logs_mine,
                    counts: counts_mine,
                    informed_times: informed_mine,
                });
                logs_rest = logs_tail;
                counts_rest = counts_tail;
                informed_rest = informed_tail;
                base = dst_hi;
                task_lo = task_hi;
            }
            run_jobs(threads, jobs, |job| {
                merge_shard_phase_b(
                    job.tasks,
                    job.new,
                    job.base,
                    rumors,
                    job.logs,
                    job.counts,
                    job.informed_times,
                    graph,
                    alive,
                    source_rumor,
                    tracked,
                    lb_bound,
                    round,
                )
            })
        };

        // Deterministic reduction, in shard order.
        let mut pages = PageTrace::default();
        for new in &new_runs {
            pages = PageTrace {
                delta: pages.delta + new.pages.delta,
                max_prefix: pages.max_prefix.max(pages.delta + new.pages.max_prefix),
            };
        }
        mem.apply_page_trace(pages);
        for delta in deltas {
            mem.live_runs += delta.appended_runs;
            *full_nodes += delta.full_nodes;
            *source_known_by += delta.source_known_by;
            *lb_deficit -= delta.lb_deficit_sub;
            changed.extend_from_slice(&delta.changed);
        }
        // `live_runs` only grows within a delivery phase, so the phase-end
        // value is its in-phase peak.
        mem.peak_runs = mem.peak_runs.max(mem.live_runs);
    }

    /// Advances `node`'s shadow frontier to log position `target` (its rumor
    /// count as of `ring_len` rounds ago — at or behind every snapshot that
    /// can still be in flight), then truncates the log behind the frontier.
    ///
    /// The shadow bitset is materialised lazily: until at least
    /// `min_truncate_runs` whole runs would be reclaimed, advancing is
    /// skipped entirely — the retained log *is* the prefix, and stays small.
    ///
    /// Saturated nodes take the **collapse** path instead: once the queued
    /// target reaches the full universe — i.e. one whole calendar lap has
    /// passed since the node's set went full, so every snapshot of it still
    /// in flight covers everything — the node's shadow is freed, its log
    /// truncated entirely, and the node marked collapsed: all future merges
    /// from it short-circuit.  While a saturated node waits for that lap,
    /// ordinary advances are skipped (no point materialising a shadow the
    /// collapse is about to free).
    // gossip-lint: allow(panic-path): shadow ring buckets and node indices are bounded by the ring/CSR invariants
    fn advance_shadow(
        &mut self,
        rumors: &[RumorSet],
        node: usize,
        target: u32,
        min_truncate_runs: usize,
    ) {
        if self.collapsed[node] {
            return;
        }
        if self.counts[node] >= rumors[node].universe() {
            if target as usize == rumors[node].universe() {
                self.collapse_node(node);
            }
            return;
        }
        let current = self.shadow_len[node];
        if target <= current {
            return;
        }
        if self.shadows[node].is_empty() {
            if self.logs[node].runs_entirely_below(target) < min_truncate_runs {
                return;
            }
            let words = vec![0u64; rumors[node].word_count()];
            self.mem.shadow_words_live += words.len() as u64;
            self.mem.shadow_words_peak = self.mem.shadow_words_peak.max(self.mem.shadow_words_live);
            self.shadows[node] = words;
        }
        let shadow = &mut self.shadows[node];
        self.logs[node].for_each_segment(current, target, |first, len| {
            rumor::set_words_range(shadow, first.index(), len as usize);
        });
        self.shadow_len[node] = target;
        let freed = self.logs[node].truncate_below(target) as u64;
        self.mem.live_runs -= freed;
        self.mem.truncated_runs += freed;
        self.mem.shadow_advances += 1;
    }

    /// Saturation collapse of `node`: frees its shadow, truncates its entire
    /// log (releasing the storage), and marks it collapsed so merges from it
    /// serve "the full universe" in `O(dst pages)`.
    ///
    /// Sound only when every possibly-outstanding snapshot of the node
    /// covers the whole universe — the callers guarantee it (one calendar
    /// lap after saturation, or at initialisation when nothing is in
    /// flight).  Its rumor set needs no action: [`RumorSet`] collapsed it to
    /// the canonical page-free full representation the moment it saturated.
    // gossip-lint: allow(panic-path): per-node vecs are sized n at construction; node ids are dense
    fn collapse_node(&mut self, node: usize) {
        debug_assert!(!self.collapsed[node]);
        let freed = self.logs[node].truncate_all() as u64;
        self.mem.live_runs -= freed;
        self.mem.truncated_runs += freed;
        let shadow = std::mem::take(&mut self.shadows[node]);
        self.mem.shadow_words_live -= shadow.len() as u64;
        self.shadow_len[node] = self.logs[node].len();
        self.collapsed[node] = true;
        self.mem.collapsed_nodes += 1;
    }

    /// Retires a crashing node from every termination counter, freezes its
    /// rumor state, and frees its log/shadow storage (a dead node is never
    /// merged from again: every flight touching it is cancelled and no new
    /// ones form).  Must be called with the *post-kill* alive view, exactly
    /// once per effective crash.
    // gossip-lint: allow(panic-path): per-node vecs are sized n at construction; node ids are dense
    fn crash_node(&mut self, rumors: &[RumorSet], node: NodeId, alive: &AliveView) {
        let i = node.index();
        if self.counts[i] >= rumors[i].universe() {
            self.full_nodes -= 1;
        }
        if let Some(r) = self.source_rumor {
            if rumors[i].contains(r) {
                self.source_known_by -= 1;
            }
        }
        if let Some(bound) = self.lb_bound {
            // Pairs incident to the dead node leave the local-broadcast
            // obligation.  Only pairs whose *other* endpoint is alive over an
            // un-cut edge were still counted.
            for (w, e) in self.graph.neighbors(node) {
                if self.graph.latency(e) <= bound
                    && alive.is_node_alive(w)
                    && alive.is_edge_alive(e)
                {
                    if !rumors[i].contains(RumorId::of_node(w)) {
                        self.lb_deficit -= 1;
                    }
                    if !rumors[w.index()].contains(RumorId::of_node(node)) {
                        self.lb_deficit -= 1;
                    }
                }
            }
        }
        if !self.collapsed[i] {
            let freed = self.logs[i].truncate_all() as u64;
            self.mem.live_runs -= freed;
            self.mem.truncated_runs += freed;
            let shadow = std::mem::take(&mut self.shadows[i]);
            self.mem.shadow_words_live -= shadow.len() as u64;
            self.shadow_len[i] = self.logs[i].len();
        }
        if let Some(pos) = self
            .pending_recovery
            .iter()
            .position(|&(v, _)| v as usize == i)
        {
            // Crashed again before recovering: it never recovers from *this*
            // rejoin (a future rejoin starts a fresh recovery clock).
            self.pending_recovery.swap_remove(pos);
        }
    }

    /// Amnesiac rejoin: resets the node to a fresh singleton rumor state
    /// (fresh log, no shadow, not collapsed), re-enters it into every
    /// termination counter, and starts its re-dissemination recovery clock.
    /// Must be called with the *post-revive* alive view.
    // gossip-lint: allow(panic-path): per-node vecs are sized n at construction; node ids are dense
    fn rejoin_node(
        &mut self,
        rumors: &mut [RumorSet],
        node: NodeId,
        round: u64,
        alive: &AliveView,
    ) {
        let i = node.index();
        let universe = rumors[i].universe();
        let pages_before = rumors[i].live_pages();
        rumors[i] = RumorSet::singleton(universe, RumorId::of_node(node));
        self.mem
            .record_page_delta(pages_before, rumors[i].live_pages());
        if !self.collapsed[i] {
            let freed = self.logs[i].truncate_all() as u64;
            self.mem.live_runs -= freed;
            self.mem.truncated_runs += freed;
            let shadow = std::mem::take(&mut self.shadows[i]);
            self.mem.shadow_words_live -= shadow.len() as u64;
        }
        self.logs[i] = AcquisitionLog::from_set(&rumors[i]);
        self.mem.live_runs += self.logs[i].retained_runs() as u64;
        self.mem.peak_runs = self.mem.peak_runs.max(self.mem.live_runs);
        self.shadow_len[i] = 0;
        self.collapsed[i] = false;
        self.counts[i] = rumors[i].len();
        if self.counts[i] >= universe {
            self.full_nodes += 1;
        }
        if let Some(r) = self.source_rumor {
            if rumors[i].contains(r) {
                self.source_known_by += 1;
            }
        }
        if let Some(r) = self.tracked {
            if rumors[i].contains(r) && self.informed_times[i].is_none() {
                self.informed_times[i] = Some(round);
            }
        }
        if let Some(bound) = self.lb_bound {
            // The rejoined node re-enters the local-broadcast obligation in
            // both directions of every usable incident edge: it forgot its
            // neighbors' rumors, and its neighbors still hold its (identical)
            // rumor or not — re-count from the actual sets.
            for (w, e) in self.graph.neighbors(node) {
                if self.graph.latency(e) <= bound
                    && alive.is_node_alive(w)
                    && alive.is_edge_alive(e)
                {
                    if !rumors[i].contains(RumorId::of_node(w)) {
                        self.lb_deficit += 1;
                    }
                    if !rumors[w.index()].contains(RumorId::of_node(node)) {
                        self.lb_deficit += 1;
                    }
                }
            }
        }
        let recovered = match self.recovery_target() {
            Some(r) => rumors[i].contains(r),
            None => rumors[i].is_full(),
        };
        if recovered {
            self.note_recovery(0);
        } else {
            self.pending_recovery.push((i as u32, round));
        }
    }

    /// Retires the local-broadcast pairs of a freshly cut edge (both
    /// directions, if both endpoints are alive — dead-endpoint pairs were
    /// already retired by the crash).  Must be called with the *post-cut*
    /// alive view.
    // gossip-lint: allow(panic-path): per-node vecs are sized n at construction; node ids are dense
    fn cut_edge_pairs(&mut self, rumors: &[RumorSet], edge: EdgeId, alive: &AliveView) {
        let Some(bound) = self.lb_bound else {
            return;
        };
        if self.graph.latency(edge) > bound {
            return;
        }
        let rec = self.graph.edge(edge);
        if !alive.is_node_alive(rec.u) || !alive.is_node_alive(rec.v) {
            return;
        }
        if !rumors[rec.u.index()].contains(RumorId::of_node(rec.v)) {
            self.lb_deficit -= 1;
        }
        if !rumors[rec.v.index()].contains(RumorId::of_node(rec.u)) {
            self.lb_deficit -= 1;
        }
    }

    /// The rumor a rejoined node must re-learn to count as *recovered*: the
    /// tracked rumor if any, else the `AllKnowRumorOf` source rumor, else
    /// (`None`) its whole set.
    fn recovery_target(&self) -> Option<RumorId> {
        self.tracked.or(self.source_rumor)
    }

    /// If `node` is awaiting recovery and now holds its target, records the
    /// re-dissemination latency and stops tracking it.
    // gossip-lint: allow(panic-path): pending_recovery rounds never exceed the current round
    fn check_recovery(&mut self, rumors: &[RumorSet], node: usize, round: u64) {
        let Some(pos) = self
            .pending_recovery
            .iter()
            .position(|&(v, _)| v as usize == node)
        else {
            return;
        };
        let recovered = match self.recovery_target() {
            Some(r) => rumors[node].contains(r),
            None => rumors[node].is_full(),
        };
        if recovered {
            let (_, since) = self.pending_recovery.swap_remove(pos);
            self.note_recovery(round - since);
        }
    }

    /// Folds one recovered rejoiner's latency into the worst-case aggregate.
    fn note_recovery(&mut self, latency: u64) {
        self.recovery_latency = Some(
            self.recovery_latency
                .map_or(latency, |cur| cur.max(latency)),
        );
    }

    fn is_done<P: Protocol>(
        &self,
        termination: &Termination,
        round: u64,
        protocol: &P,
        in_flight_count: usize,
        alive: Option<&AliveView>,
    ) -> bool {
        // Under faults, dissemination conditions quantify over *alive* nodes
        // only (counters never count dead nodes); with no node alive they
        // hold vacuously.
        let n_alive = alive.map_or(self.counts.len(), AliveView::alive_count);
        match *termination {
            Termination::AllKnowRumorOf(_) => self.source_known_by == n_alive,
            Termination::AllKnowAll => self.full_nodes == n_alive,
            Termination::LocalBroadcast(_) => self.lb_deficit == 0,
            Termination::FixedRounds(target) => round >= target,
            Termination::Quiescent => {
                in_flight_count == 0
                    && self
                        .graph
                        .nodes()
                        .all(|v| alive.is_some_and(|a| !a.is_node_alive(v)) || protocol.is_idle(v))
            }
        }
    }
}

/// The synchronous round simulator.
pub struct Simulation<'g> {
    graph: &'g Graph,
    config: SimConfig,
    rumors: Vec<RumorSet>,
}

impl<'g> Simulation<'g> {
    /// Creates a simulation where node `i` initially knows exactly rumor `i`
    /// (the all-to-all starting state, which also covers one-to-all: just
    /// terminate on [`Termination::AllKnowRumorOf`]).
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        let n = graph.node_count();
        let rumors = (0..n)
            .map(|i| RumorSet::singleton(n, RumorId::from(i)))
            .collect();
        Simulation {
            graph,
            config,
            rumors,
        }
    }

    /// Creates a simulation with explicitly provided initial rumor sets
    /// (used to chain protocol phases, e.g. the pattern-broadcast schedule).
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the node count.
    pub fn with_rumors(graph: &'g Graph, config: SimConfig, initial: Vec<RumorSet>) -> Self {
        assert_eq!(
            initial.len(),
            graph.node_count(),
            "one rumor set per node is required"
        );
        Simulation {
            graph,
            config,
            rumors: initial,
        }
    }

    /// Read access to the current rumor sets (indexed by node).
    pub fn rumors(&self) -> &[RumorSet] {
        &self.rumors
    }

    /// Consumes the simulation and returns the rumor sets (after a run).
    pub fn into_rumors(self) -> Vec<RumorSet> {
        self.rumors
    }

    /// Runs `protocol` until the termination condition or the round cap is
    /// reached and returns the run report.
    ///
    /// # Re-running a simulation
    ///
    /// The rumor sets are the only simulation state that survives between
    /// runs.  Calling `run` again (with the same or another protocol)
    /// continues from the *reached rumor state*, but:
    ///
    /// * any exchange still **in flight** when the previous run stopped is
    ///   **dropped** — it never completes and its rumors are never merged;
    /// * the **round counter restarts at 0**, so `max_rounds`,
    ///   [`Termination::FixedRounds`] targets, [`RunReport::rounds`] and
    ///   [`RunReport::informed_times`] are all relative to the new run;
    /// * discovered latencies, pending-exchange counts (Blocking mode) and
    ///   activation counters are likewise reset.
    ///
    /// Protocol state is owned by the caller and is *not* reset; reuse the
    /// same protocol value to continue its program, or pass a fresh one.
    ///
    /// # Determinism and parallelism
    ///
    /// Each node's per-round RNG stream is derived independently from
    /// `(seed, round, node)` (see [`decision_rng`]), and the completion-merge
    /// pass always executes in canonical order — ascending destination node,
    /// flight order within a destination — whatever
    /// [`SimConfig::threads`] says.  Reports are therefore byte-identical
    /// across thread counts, and identical between `run` (serial decision
    /// pass) and [`run_sharded`](Self::run_sharded) (parallel decision pass).
    ///
    /// One timing note: [`Protocol::on_rejected`] fires during the serial
    /// epilogue *after* the round's whole decision pass, not interleaved with
    /// it — a rejection callback can no longer observe later nodes'
    /// undecided state, which is exactly what makes the pass shardable.
    pub fn run<P: Protocol>(&mut self, protocol: &mut P) -> RunReport {
        self.run_inner::<P, SerialDecisions>(protocol)
    }

    /// Runs a [`ShardedProtocol`] with the decision pass fanned out across
    /// [`SimConfig::threads`] workers, in addition to the completion-merge
    /// pass both entry points shard.  The report is byte-identical to
    /// [`run`](Self::run) at any thread count: both drivers derive each
    /// node's RNG stream independently from `(seed, round, node)`, record
    /// one decision per worklist entry, and apply them serially in worklist
    /// order.
    pub fn run_sharded<P: ShardedProtocol>(&mut self, protocol: &mut P) -> RunReport {
        self.run_inner::<P, ShardedDecisions>(protocol)
    }

    // gossip-lint: allow(panic-path): node/edge indices come from the graph's own CSR bounds; ring_len >= 1
    fn run_inner<P: Protocol, D: DecisionDriver<P>>(&mut self, protocol: &mut P) -> RunReport {
        let n = self.graph.node_count();
        let threads = self.config.threads.max(1);

        // Fault machinery — all empty/`None` without a plan, so fault-free
        // runs pay nothing beyond a few predictable branches.
        let fault_plan = self.config.faults.clone();
        let fault_events: &[(u64, FaultEvent)] = match &fault_plan {
            Some(plan) => plan.events(),
            None => &[],
        };
        let mut fault_cursor = 0usize;
        let mut fault_tally = FaultTally::default();
        let mut loss = fault_plan.as_ref().and_then(FaultPlan::loss_stream);
        let mut alive: Option<AliveView> = fault_plan.as_ref().map(|_| AliveView::new(self.graph));
        // Per-node fault epoch: queued shadow-ring entries carry the epoch at
        // queue time, and a crash or rejoin bumps it — stale entries (whose
        // log positions refer to a freed or reset log) are dropped on pop.
        let mut epoch: Vec<u32> = if fault_plan.is_some() {
            vec![0; n]
        } else {
            Vec::new()
        };

        let mut progress = Progress::new(self.graph, &self.config, &self.rumors);
        // Nodes that start fully saturated (trivial universes, pre-seeded
        // states) have no outstanding snapshots at all: collapse immediately.
        for i in 0..n {
            if progress.counts[i] >= self.rumors[i].universe() {
                progress.collapse_node(i);
            }
        }
        // Calendar queue: `completes_at % ring_len` addresses the bucket of
        // exchanges completing at `completes_at`.  Latencies are in
        // `1..=max_latency`, so at any instant the live completion times
        // occupy distinct buckets.
        let ring_len = self.graph.max_latency() as usize + 1;
        let mut calendar: Vec<Vec<Flight>> = (0..ring_len).map(|_| Vec::new()).collect();
        let mut in_flight_count = 0usize;
        // Per-edge merge watermarks: how much of `v`'s log `u` has already
        // merged over this edge (`[0]`) and vice versa (`[1]`).
        let mut watermarks: Vec<[u32; 2]> = vec![[0, 0]; self.graph.edge_count()];
        let mut discovered = DiscoveredLatencies::new(self.graph.edge_count());
        let mut pending_own = vec![0usize; n];
        let mut activations: u64 = 0;
        let mut rejections: u64 = 0;
        // Shadow-advancement calendar: a node whose rumor count changed in
        // round `r` is queued with its end-of-round count, and popped
        // `ring_len` rounds later — by then every snapshot still in flight
        // was taken *after* round `r`, so the frontier may move there.
        let mut shadow_ring: Vec<Vec<(u32, u32, u32)>> =
            (0..ring_len).map(|_| Vec::new()).collect();
        let mut merge_tasks: Vec<MergeTask> = Vec::new();
        let mut changed_dsts: Vec<u32> = Vec::new();
        let mut decides: Vec<Decide> = Vec::new();
        let min_truncate_runs = self.config.shadow_min_truncate_runs;

        // Event-driven scheduler state: the sorted worklist of active nodes
        // (ascending node order keeps protocol calls — and therefore RNG
        // draws — in exactly the order of the historical all-nodes sweep),
        // a per-node state, and the buffer wake events accumulate in before
        // being merged back into the worklist.
        let mut node_state: Vec<NodeState> = vec![NodeState::Active; n];
        let mut worklist: Vec<u32> = (0..n as u32).collect();
        let mut woken: Vec<u32> = Vec::new();
        let mut merge_buf: Vec<u32> = Vec::new();
        let mut rounds_simulated: u64 = 0;
        let mut rounds_skipped: u64 = 0;
        // Every node starts in the worklist, so the peak is at least `n`
        // even for runs that complete before their first decision phase
        // (keeps the `active_peak >= active_final` invariant).
        let mut active_peak: u64 = worklist.len() as u64;

        let mut round: u64 = 0;
        let mut completed = progress.is_done(
            &self.config.termination,
            0,
            protocol,
            in_flight_count,
            alive.as_ref(),
        );
        if !completed {
            while round < self.config.max_rounds {
                rounds_simulated += 1;
                let bucket = round as usize % ring_len;

                // 0a. Apply fault events scheduled for this round — *before*
                //     shadow advances and deliveries, so an exchange
                //     completing this very round but incident to a node that
                //     crashes now (or riding an edge cut now) is cancelled,
                //     never delivered; the crash therefore can never
                //     double-adjust a counter a delivery already touched.
                while fault_events
                    .get(fault_cursor)
                    .is_some_and(|&(r, _)| r <= round)
                {
                    let (_, event) = fault_events[fault_cursor];
                    fault_cursor += 1;
                    let av = alive.as_mut().expect("fault events imply an alive view");
                    match event {
                        FaultEvent::Crash(v) => {
                            if !av.kill_node(self.graph, v) {
                                continue; // already dead: uncounted no-op
                            }
                            fault_tally.crashes += 1;
                            // Cancel every in-flight exchange touching v; a
                            // surviving initiator gets its slot back (a wake
                            // event).
                            for bucket_flights in calendar.iter_mut() {
                                bucket_flights.retain(|fl| {
                                    if fl.initiator != v && fl.responder != v {
                                        return true;
                                    }
                                    fault_tally.cancelled += 1;
                                    in_flight_count -= 1;
                                    if fl.initiator != v {
                                        let ii = fl.initiator.index();
                                        pending_own[ii] = pending_own[ii].saturating_sub(1);
                                        force_wake(&mut node_state, &mut woken, ii);
                                    }
                                    false
                                });
                            }
                            pending_own[v.index()] = 0;
                            progress.crash_node(&self.rumors, v, av);
                            epoch[v.index()] = epoch[v.index()].wrapping_add(1);
                            node_state[v.index()] = NodeState::Quiescent;
                            // Topology changed under the survivors.
                            for (w, _) in self.graph.neighbors(v) {
                                if av.is_node_alive(w) {
                                    force_wake(&mut node_state, &mut woken, w.index());
                                }
                            }
                        }
                        FaultEvent::Rejoin(v) => {
                            if !av.revive_node(self.graph, v) {
                                continue; // already alive: uncounted no-op
                            }
                            fault_tally.rejoins += 1;
                            // Amnesiac restart: zero *both* directions of
                            // every incident watermark (the peer's stale
                            // high-water mark would otherwise skip the fresh
                            // log's prefix, and v must re-merge everything),
                            // and v forgets its discovered latencies.
                            for (_, e) in self.graph.neighbors(v) {
                                watermarks[e.index()] = [0, 0];
                                discovered.unmark(e, self.graph.edge(e).v == v);
                            }
                            progress.rejoin_node(&mut self.rumors, v, round, av);
                            epoch[v.index()] = epoch[v.index()].wrapping_add(1);
                            force_wake(&mut node_state, &mut woken, v.index());
                            for (w, _) in self.graph.neighbors(v) {
                                if av.is_node_alive(w) {
                                    force_wake(&mut node_state, &mut woken, w.index());
                                }
                            }
                        }
                        FaultEvent::CutLink(e) => {
                            if !av.cut_edge(self.graph, e) {
                                continue; // already cut: uncounted no-op
                            }
                            fault_tally.links_cut += 1;
                            for bucket_flights in calendar.iter_mut() {
                                bucket_flights.retain(|fl| {
                                    if fl.edge != e {
                                        return true;
                                    }
                                    fault_tally.cancelled += 1;
                                    in_flight_count -= 1;
                                    let ii = fl.initiator.index();
                                    pending_own[ii] = pending_own[ii].saturating_sub(1);
                                    force_wake(&mut node_state, &mut woken, ii);
                                    false
                                });
                            }
                            progress.cut_edge_pairs(&self.rumors, e, av);
                            let rec = self.graph.edge(e);
                            for w in [rec.u, rec.v] {
                                if av.is_node_alive(w) {
                                    force_wake(&mut node_state, &mut woken, w.index());
                                }
                            }
                        }
                    }
                }

                // 0. Advance shadow frontiers queued `ring_len` rounds ago and
                //    truncate the logs behind them.  A finished
                //    saturation-collapse lap is a wake event (see
                //    [`Activity::IdleUntilWoken`]).
                let mut advances = std::mem::take(&mut shadow_ring[bucket]);
                for (node, target, entry_epoch) in advances.drain(..) {
                    let i = node as usize;
                    if epoch.get(i).copied().unwrap_or(0) != entry_epoch {
                        // The node crashed or rejoined since this advance was
                        // queued: the target refers to a freed or reset log.
                        continue;
                    }
                    let was_collapsed = progress.collapsed[i];
                    progress.advance_shadow(&self.rumors, i, target, min_truncate_runs);
                    if !was_collapsed && progress.collapsed[i] && node_state[i] == NodeState::Idle {
                        node_state[i] = NodeState::Active;
                        woken.push(node);
                    }
                }
                shadow_ring[bucket] = advances; // keep the bucket's capacity

                // 1. Deliver exchanges completing at the start of this round.
                //    Serial prologue, in flight order: free initiator slots,
                //    tally losses, resolve the per-edge watermarks, and emit
                //    one merge task per receiving endpoint.
                let mut completions = std::mem::take(&mut calendar[bucket]);
                in_flight_count -= completions.len();
                for fl in completions.iter() {
                    let rec = self.graph.edge(fl.edge);
                    pending_own[fl.initiator.index()] =
                        pending_own[fl.initiator.index()].saturating_sub(1);
                    if fl.lost {
                        // Timed out in transit: the initiator's slot frees up
                        // (a wake event) but nothing is delivered — no merge,
                        // no latency discovery, no `on_exchange`.
                        fault_tally.lost += 1;
                        force_wake(&mut node_state, &mut woken, fl.initiator.index());
                        continue;
                    }
                    // Both endpoints merge the peer's log prefix as of
                    // initiation, minus what already crossed this edge.
                    let [toward_u, toward_v] = &mut watermarks[fl.edge.index()];
                    let (toward_initiator, toward_responder) = if fl.initiator == rec.u {
                        (toward_u, toward_v)
                    } else {
                        (toward_v, toward_u)
                    };
                    for (dst, src, upto, mark) in [
                        (
                            fl.initiator,
                            fl.responder,
                            fl.responder_known,
                            toward_initiator,
                        ),
                        (
                            fl.responder,
                            fl.initiator,
                            fl.initiator_known,
                            toward_responder,
                        ),
                    ] {
                        let start = (*mark).min(upto);
                        *mark = (*mark).max(upto);
                        if start < upto
                            && progress.counts[dst.index()] < self.rumors[dst.index()].universe()
                        {
                            merge_tasks.push(MergeTask {
                                dst: dst.index() as u32,
                                src: src.index() as u32,
                                start,
                                upto,
                            });
                        }
                    }
                    discovered.mark(fl.edge, fl.initiator == rec.v);
                    discovered.mark(fl.edge, fl.responder == rec.v);
                }

                // Canonical merge order — ascending destination, flight order
                // within a destination — regardless of thread count.
                changed_dsts.clear();
                progress.merge_completions(
                    &mut self.rumors,
                    &mut merge_tasks,
                    round,
                    alive.as_ref(),
                    threads,
                    &mut changed_dsts,
                );
                merge_tasks.clear();

                // Queue this round's growth for shadow advancement one ring
                // revolution from now, and settle pending rejoin recoveries —
                // per changed destination, in ascending node order.
                for &node in changed_dsts.iter() {
                    shadow_ring[bucket].push((
                        node,
                        progress.counts[node as usize] as u32,
                        epoch.get(node as usize).copied().unwrap_or(0),
                    ));
                }
                if !progress.pending_recovery.is_empty() {
                    for &node in changed_dsts.iter() {
                        progress.check_recovery(&self.rumors, node as usize, round);
                    }
                }

                // Protocol notifications and wake events, in flight order.
                for fl in completions.drain(..) {
                    if fl.lost {
                        continue;
                    }
                    let latency = self.graph.latency(fl.edge);
                    for (node, here) in [(fl.initiator, true), (fl.responder, false)] {
                        protocol.on_exchange(
                            node,
                            &ExchangeEvent {
                                peer: if here { fl.responder } else { fl.initiator },
                                edge: fl.edge,
                                latency,
                                initiated_here: here,
                                round,
                            },
                        );
                        // A completed incident exchange is a wake event: the
                        // node may have merged new rumors, its `on_exchange`
                        // state changed, and (Blocking mode) `can_initiate`
                        // may have flipped.
                        let i = node.index();
                        if node_state[i] == NodeState::Idle {
                            node_state[i] = NodeState::Active;
                            woken.push(i as u32);
                        }
                    }
                }
                calendar[bucket] = completions; // keep the bucket's capacity

                // 2. Check termination (conditions are evaluated on round boundaries).
                if progress.is_done(
                    &self.config.termination,
                    round,
                    protocol,
                    in_flight_count,
                    alive.as_ref(),
                ) {
                    completed = true;
                    break;
                }

                // Re-activate woken nodes, keeping the worklist sorted so
                // decisions stay in ascending node order (wakes arrive in
                // completion order and may repeat across a node's two
                // endpoints' events, hence sort + dedup).
                if !woken.is_empty() {
                    woken.sort_unstable();
                    woken.dedup();
                    merge_buf.clear();
                    merge_buf.reserve(worklist.len() + woken.len());
                    let (mut a, mut b) = (0, 0);
                    while a < worklist.len() && b < woken.len() {
                        // The `Equal` arm matters under faults: a node that
                        // crashed and rejoined in the same round is still in
                        // the stale worklist *and* in `woken` — emitting it
                        // twice would double its `on_round` call and
                        // desynchronise the RNG.
                        match worklist[a].cmp(&woken[b]) {
                            std::cmp::Ordering::Less => {
                                merge_buf.push(worklist[a]);
                                a += 1;
                            }
                            std::cmp::Ordering::Greater => {
                                merge_buf.push(woken[b]);
                                b += 1;
                            }
                            std::cmp::Ordering::Equal => {
                                merge_buf.push(worklist[a]);
                                a += 1;
                                b += 1;
                            }
                        }
                    }
                    merge_buf.extend_from_slice(&worklist[a..]);
                    merge_buf.extend_from_slice(&woken[b..]);
                    std::mem::swap(&mut worklist, &mut merge_buf);
                    woken.clear();
                }
                active_peak = active_peak.max(worklist.len() as u64);

                // 3. Let every *active* node act: the decision pass records
                //    one `Decide` per worklist entry (serially or across
                //    worker shards — byte-identical either way, since each
                //    node's RNG stream is independent and decisions only read
                //    round-start state), then the serial epilogue applies
                //    them in worklist order.  Nodes whose `on_round` returned
                //    `None` and whose `activity` promises silence leave the
                //    worklist here.
                decides.clear();
                {
                    let ctx = DecisionCtx {
                        graph: self.graph,
                        rumors: &self.rumors,
                        alive: alive.as_ref(),
                        discovered: &discovered,
                        pending_own: &pending_own,
                        mode: self.config.mode,
                        latencies_known: self.config.latencies_known,
                        seed: self.config.seed,
                        round,
                        threads,
                    };
                    D::decide(protocol, &ctx, &worklist, &mut decides);
                }
                debug_assert_eq!(decides.len(), worklist.len());
                let mut kept = 0;
                for (k, &decide) in decides.iter().enumerate() {
                    let i = worklist[k] as usize;
                    let node = NodeId::new(i);
                    let target = match decide {
                        // Crashed while queued: drop from the worklist (its
                        // state is already `Quiescent`; a rejoin force-wake
                        // re-admits it).
                        Decide::Dead => continue,
                        Decide::Silent(activity) => {
                            match activity {
                                Activity::Active => {
                                    worklist[kept] = i as u32;
                                    kept += 1;
                                }
                                Activity::IdleUntilWoken => node_state[i] = NodeState::Idle,
                                Activity::Quiescent => node_state[i] = NodeState::Quiescent,
                            }
                            continue;
                        }
                        Decide::Target(target) => target,
                    };
                    worklist[kept] = i as u32;
                    kept += 1;
                    let can_initiate = match self.config.mode {
                        ExchangeMode::NonBlocking => true,
                        // Unchanged since the decision pass: only `i`'s own
                        // epilogue step can bump `pending_own[i]`, and each
                        // node appears in the worklist once.
                        ExchangeMode::Blocking => pending_own[i] == 0,
                    };
                    if !can_initiate {
                        continue;
                    }
                    let Some(edge) = self.graph.find_edge(node, target) else {
                        rejections += 1;
                        protocol.on_rejected(node, target, round);
                        continue;
                    };
                    if let Some(av) = &alive {
                        // A dead peer or cut edge rejects like a non-neighbor
                        // (the filtered view means a well-behaved protocol
                        // never picks one).
                        if !av.is_edge_alive(edge) || !av.is_node_alive(target) {
                            rejections += 1;
                            protocol.on_rejected(node, target, round);
                            continue;
                        }
                    }
                    let latency = self.graph.latency(edge);
                    activations += 1;
                    pending_own[i] += 1;
                    calendar[(round + latency) as usize % ring_len].push(Flight {
                        initiator: node,
                        responder: target,
                        edge,
                        initiator_known: progress.counts[i] as u32,
                        responder_known: progress.counts[target.index()] as u32,
                        // Drawn exactly once per *accepted* initiation, from
                        // the dedicated loss stream (never the protocol RNG).
                        lost: fault::draw_loss(&mut loss),
                    });
                    in_flight_count += 1;
                }
                worklist.truncate(kept);

                // 4. Advance the round clock.  With an empty worklist no
                //    node can act until the next calendar event, and rounds
                //    without events are no-ops (no deliveries, no shadow
                //    laps, no decisions) — so fast-forward straight past
                //    them instead of spinning, stopping early at a
                //    `FixedRounds` target or the `max_rounds` cap, both of
                //    which are evaluated on the round counter itself.
                //
                //    One caveat: this round's *decision phase* ran after
                //    this round's termination check, and for
                //    [`Termination::Quiescent`] a final `on_round` call may
                //    have flipped the last `is_idle` — state the check
                //    could not see but that the reference engine observes
                //    at the next round's boundary.  Nothing can change
                //    *during* a gap (no protocol calls, frozen counters),
                //    so one re-check at `round + 1` is exact: if the run is
                //    done there, walk a single round and let the loop
                //    terminate where the reference engine does.
                if worklist.is_empty() {
                    let mut next = next_event_round(round, ring_len, &calendar, &shadow_ring)
                        .unwrap_or(self.config.max_rounds)
                        .min(self.config.max_rounds);
                    if let Termination::FixedRounds(target) = self.config.termination {
                        // `target > round`, else step 2 would have completed.
                        next = next.min(target);
                    }
                    // A pending fault event is a hard stop for the gap: it
                    // changes topology (and wakes nodes), so rounds past it
                    // are not provably no-ops.  Pending events all lie
                    // strictly after `round` (step 0a drained the rest); the
                    // `max` is defensive.
                    if let Some(&(r, _)) = fault_events.get(fault_cursor) {
                        next = next.min(r.max(round + 1));
                    }
                    if progress.is_done(
                        &self.config.termination,
                        round + 1,
                        protocol,
                        in_flight_count,
                        alive.as_ref(),
                    ) {
                        next = next.min(round + 1);
                    }
                    debug_assert!(next > round);
                    rounds_skipped += next - round - 1;
                    round = next;
                } else {
                    round += 1;
                }
            }
        }

        if !completed {
            completed = progress.is_done(
                &self.config.termination,
                round,
                protocol,
                in_flight_count,
                alive.as_ref(),
            );
        }
        let rumor_set_bytes = progress.mem.pages_peak * RumorSet::page_cost_bytes()
            + n as u64 * RumorSet::base_cost_bytes();
        let peak_log_bytes = progress.mem.peak_runs * 8; // a Run is two u32s
        let shadow_bytes = progress.mem.shadow_words_peak * 8;
        let watermark_bytes = self.graph.edge_count() as u64 * 8;
        let discovery_bytes = discovered.bits.len() as u64 * 8;
        let mem = MemStats {
            peak_log_runs: progress.mem.peak_runs,
            peak_log_bytes,
            live_log_runs: progress.mem.live_runs,
            truncated_runs: progress.mem.truncated_runs,
            shadow_advances: progress.mem.shadow_advances,
            shadow_bytes,
            rumor_set_bytes,
            pages_live: progress.mem.pages_live,
            pages_peak: progress.mem.pages_peak,
            saturated_nodes: progress.full_nodes as u64,
            collapsed_nodes: progress.mem.collapsed_nodes,
            peak_engine_bytes: rumor_set_bytes
                + shadow_bytes
                + peak_log_bytes
                + watermark_bytes
                + discovery_bytes,
            rounds_simulated,
            rounds_skipped,
            active_peak,
            active_final: worklist.len() as u64,
        };
        // Graceful-degradation accounting: present exactly when a fault plan
        // was attached (even an inert one), and computed identically by the
        // reference engine — it is part of the semantic report.
        let faults = alive.map(|av| {
            let (residual_components, largest_component) = av.residual_components(self.graph);
            FaultReport {
                crashes: fault_tally.crashes,
                rejoins: fault_tally.rejoins,
                links_cut: fault_tally.links_cut,
                exchanges_cancelled: fault_tally.cancelled,
                exchanges_lost: fault_tally.lost,
                alive_nodes: av.alive_count() as u64,
                residual_components,
                largest_component,
                stranded_rumors: fault::stranded_rumors(&self.rumors, &av),
                recovery_latency: progress.recovery_latency,
            }
        });
        RunReport {
            protocol: protocol.name().to_string(),
            rounds: round,
            activations,
            messages: activations * 2,
            completed,
            rejections,
            informed_times: if progress.informed_times.is_empty() {
                None
            } else {
                Some(progress.informed_times)
            },
            min_rumors_known: progress.counts.iter().copied().min().unwrap_or(0),
            faults,
            mem: Some(mem),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{RandomPushPull, RoundRobinFlood, Silent};
    use gossip_graph::generators;

    #[test]
    fn silent_protocol_never_completes() {
        let g = generators::clique(4, 1).unwrap();
        let config = SimConfig::new(1)
            .termination(Termination::AllKnowAll)
            .max_rounds(50);
        let report = Simulation::new(&g, config).run(&mut Silent);
        assert!(!report.completed);
        assert_eq!(report.activations, 0);
        assert_eq!(report.rounds, 50);
    }

    #[test]
    fn push_pull_completes_one_to_all_on_clique() {
        let g = generators::clique(16, 1).unwrap();
        let config = SimConfig::new(3)
            .termination(Termination::AllKnowRumorOf(NodeId::new(0)))
            .track_rumor(RumorId(0));
        let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
        assert!(report.completed);
        assert!(report.rounds <= 40);
        let times = report.informed_times.unwrap();
        assert!(times.iter().all(Option::is_some));
        assert_eq!(times[0], Some(0));
    }

    #[test]
    fn latency_delays_completion() {
        let slow = generators::clique(8, 10).unwrap();
        let fast = generators::clique(8, 1).unwrap();
        let mk = |g| {
            let config = SimConfig::new(5).termination(Termination::AllKnowAll);
            Simulation::new(g, config).run(&mut RandomPushPull::new(g))
        };
        let slow_report = mk(&slow);
        let fast_report = mk(&fast);
        assert!(slow_report.completed && fast_report.completed);
        // Every exchange on the slow clique needs 10 rounds, so completion
        // cannot beat 10 rounds and should be clearly slower than the fast clique.
        assert!(slow_report.rounds >= 10);
        assert!(
            slow_report.rounds > 2 * fast_report.rounds,
            "latency-10 clique ({}) should be much slower than latency-1 clique ({})",
            slow_report.rounds,
            fast_report.rounds
        );
    }

    #[test]
    fn blocking_mode_throttles_initiations() {
        // A protocol that never goes quiet, so the measured contrast is the
        // exchange *mode* alone (the bundled flood now idles between laps).
        struct Chatty;
        impl Protocol for Chatty {
            fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
                view.can_initiate.then(|| view.neighbors[0].0)
            }
        }
        let g = generators::clique(6, 5).unwrap();
        let blocking = SimConfig::new(9)
            .mode(ExchangeMode::Blocking)
            .termination(Termination::FixedRounds(50));
        let nonblocking = SimConfig::new(9).termination(Termination::FixedRounds(50));
        let b = Simulation::new(&g, blocking).run(&mut Chatty);
        let nb = Simulation::new(&g, nonblocking).run(&mut Chatty);
        // With latency-5 edges a blocking node can start at most 1 exchange
        // per 5 rounds; non-blocking can start one every round.
        assert!(b.activations * 3 < nb.activations);
    }

    #[test]
    fn local_broadcast_termination() {
        let g = generators::dumbbell(4, 50).unwrap();
        // Local broadcast over fast edges only: the bridge (latency 50) is excluded.
        let config = SimConfig::new(4)
            .termination(Termination::LocalBroadcast(1))
            .max_rounds(500);
        let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
        assert!(report.completed);
        assert!(report.rounds < 500);
    }

    #[test]
    fn fixed_round_termination_runs_exactly_that_long() {
        let g = generators::cycle(5, 1).unwrap();
        let config = SimConfig::new(2).termination(Termination::FixedRounds(17));
        let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
        assert_eq!(report.rounds, 17);
        assert!(report.completed);
    }

    #[test]
    fn with_rumors_chains_state_between_runs() {
        let g = generators::path(4, 1).unwrap();
        let config = SimConfig::new(6).termination(Termination::FixedRounds(3));
        let mut sim = Simulation::new(&g, config);
        let _ = sim.run(&mut RoundRobinFlood::new(&g));
        let mid = sim.into_rumors();
        let knew: usize = mid.iter().map(RumorSet::len).sum();

        let config2 = SimConfig::new(6).termination(Termination::AllKnowAll);
        let mut sim2 = Simulation::with_rumors(&g, config2, mid);
        let report = sim2.run(&mut RoundRobinFlood::new(&g));
        assert!(report.completed);
        let final_total: usize = sim2.rumors().iter().map(RumorSet::len).sum();
        assert!(final_total >= knew);
        assert_eq!(final_total, 16);
    }

    #[test]
    fn rerun_drops_in_flight_exchanges_and_restarts_rounds() {
        // Pins the documented continuation semantics of `Simulation::run`:
        // rumor state carries over, in-flight exchanges and the round counter
        // do not.
        let g = generators::path(2, 10).unwrap();
        let config = SimConfig::new(1).termination(Termination::FixedRounds(5));
        let mut sim = Simulation::new(&g, config);
        let mut protocol = RoundRobinFlood::new(&g);
        let first = sim.run(&mut protocol);
        assert_eq!(first.rounds, 5);
        assert!(first.activations > 0);
        // The latency-10 exchange initiated at round 0 was still in flight at
        // round 5; it is dropped, so nobody has learned anything.
        assert!(sim.rumors().iter().all(|s| s.len() == 1));

        // The reused protocol value continues its program: the flood already
        // completed its relay lap in the first run, so it believes every
        // neighbor has been offered everything and stays quiet.
        let mut sim = Simulation::with_rumors(
            &g,
            SimConfig::new(1).termination(Termination::FixedRounds(12)),
            sim.into_rumors(),
        );
        let continued = sim.run(&mut protocol);
        assert_eq!(continued.rounds, 12);
        assert_eq!(continued.activations, 0, "a clean flood stays quiet");
        assert!(sim.rumors().iter().all(|s| s.len() == 1));

        // Re-running with a *fresh* protocol restarts the round counter (the
        // FixedRounds(12) target is relative to the new run) and re-initiates
        // from scratch: the fresh exchange completes at round 10 of the new
        // run.
        let mut sim = Simulation::with_rumors(
            &g,
            SimConfig::new(1).termination(Termination::FixedRounds(12)),
            sim.into_rumors(),
        );
        let second = sim.run(&mut RoundRobinFlood::new(&g));
        assert_eq!(second.rounds, 12);
        assert!(sim.rumors().iter().all(|s| s.len() == 2));
    }

    #[test]
    fn non_neighbor_targets_are_rejected_and_counted() {
        // A protocol that always targets a non-neighbor: on a path 0-1-2,
        // node 0 contacts node 2.
        struct Confused;
        impl Protocol for Confused {
            fn name(&self) -> &'static str {
                "confused"
            }
            fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
                (view.node.index() == 0).then_some(NodeId::new(2))
            }
            fn on_rejected(&mut self, node: NodeId, target: NodeId, round: u64) {
                // Override the default (which debug_asserts) to observe the event.
                assert_eq!(node, NodeId::new(0));
                assert_eq!(target, NodeId::new(2));
                let _ = round;
            }
        }
        let g = generators::path(3, 1).unwrap();
        let config = SimConfig::new(1).termination(Termination::FixedRounds(4));
        let report = Simulation::new(&g, config).run(&mut Confused);
        assert_eq!(report.rejections, 4);
        assert_eq!(report.activations, 0);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    #[cfg(debug_assertions)]
    fn default_on_rejected_debug_asserts() {
        struct Confused;
        impl Protocol for Confused {
            fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
                (view.node.index() == 0).then_some(NodeId::new(2))
            }
        }
        let g = generators::path(3, 1).unwrap();
        let config = SimConfig::new(1).termination(Termination::FixedRounds(4));
        let _ = Simulation::new(&g, config).run(&mut Confused);
    }

    #[test]
    fn shadow_compaction_does_not_change_results_and_reports_memory() {
        // The delayed-shadow machinery is a pure memory optimisation: forcing
        // it on (threshold 0) must leave every semantic field untouched.
        let g = generators::clique(12, 3).unwrap();
        let run = |cfg: SimConfig| Simulation::new(&g, cfg).run(&mut RandomPushPull::new(&g));
        let base = run(SimConfig::new(11).termination(Termination::FixedRounds(40)));
        let forced = run(SimConfig::new(11)
            .termination(Termination::FixedRounds(40))
            .shadow_compaction(0));
        assert_eq!(base.semantics(), forced.semantics());

        let forced_mem = forced.mem.unwrap();
        assert!(forced_mem.shadow_advances > 0, "threshold 0 must advance");
        assert!(forced_mem.truncated_runs > 0, "advancing must truncate");
        assert!(forced_mem.shadow_bytes > 0);
        assert!(forced_mem.peak_engine_bytes >= forced_mem.rumor_set_bytes);

        let lazy_mem = base.mem.unwrap();
        assert_eq!(
            lazy_mem.shadow_advances, 0,
            "12-entry logs never reach the 64-run materialisation threshold"
        );
        assert_eq!(lazy_mem.shadow_bytes, 0);
        assert!(lazy_mem.peak_log_runs > 0);
    }

    #[test]
    fn latency_discovery_through_exchanges() {
        // A protocol can see an incident latency only after using the edge.
        struct Probe {
            learned: Vec<Option<Latency>>,
        }
        impl Protocol for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
                if view.node.index() == 0 {
                    let (nbr, edge) = view.neighbors[0];
                    let idx = view.round as usize % self.learned.len();
                    self.learned[idx] = view.known_latency(edge);
                    return Some(nbr);
                }
                None
            }
        }
        let g = generators::path(2, 7).unwrap();
        let config = SimConfig::new(1).termination(Termination::FixedRounds(10));
        let mut p = Probe {
            learned: vec![None; 10],
        };
        let _ = Simulation::new(&g, config).run(&mut p);
        // Round 0: unknown; after the first exchange completes (round 7) it is known.
        assert_eq!(p.learned[0], None);
        assert_eq!(p.learned[9], Some(7));
    }

    #[test]
    fn known_latency_mode_reveals_latencies_immediately() {
        struct Check;
        impl Protocol for Check {
            fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
                let (_, edge) = view.neighbors[0];
                assert_eq!(view.known_latency(edge), Some(7));
                None
            }
        }
        let g = generators::path(2, 7).unwrap();
        let config = SimConfig::new(1)
            .latencies_known(true)
            .termination(Termination::FixedRounds(2));
        let _ = Simulation::new(&g, config).run(&mut Check);
    }

    #[test]
    fn known_latency_is_none_for_foreign_edges() {
        // Node 0 on a path 0-1-2 can never learn the latency of edge (1, 2),
        // even after every edge has carried an exchange.
        struct ProbeForeign {
            foreign: Option<Option<Latency>>,
        }
        impl Protocol for ProbeForeign {
            fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
                if view.node.index() == 0 && view.round == 8 {
                    // Edge id 1 joins nodes 1 and 2 on the path.
                    self.foreign = Some(view.known_latency(EdgeId::new(1)));
                }
                view.neighbors.first().map(|&(w, _)| w)
            }
        }
        let g = generators::path(3, 2).unwrap();
        let config = SimConfig::new(1).termination(Termination::FixedRounds(10));
        let mut p = ProbeForeign { foreign: None };
        let _ = Simulation::new(&g, config).run(&mut p);
        assert_eq!(p.foreign, Some(None));
    }
}
