//! The synchronous round engine.

use std::collections::HashMap;

use gossip_graph::{EdgeId, Graph, Latency, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::report::RunReport;
use crate::rumor::{RumorId, RumorSet};

/// Whether a node may start a new exchange while one it initiated is still in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// The paper's main model: a node can initiate a new exchange every round.
    #[default]
    NonBlocking,
    /// A node must wait for its own in-flight exchange to complete before
    /// initiating another (used by the pattern-broadcast analysis, §4.2).
    Blocking,
}

/// When the simulation stops (in addition to the `max_rounds` safety cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// One-to-all dissemination: every node knows the rumor originating at the given node.
    AllKnowRumorOf(NodeId),
    /// All-to-all dissemination: every node's rumor set contains the full universe.
    AllKnowAll,
    /// Local broadcast restricted to edges of latency at most the bound:
    /// every node knows the rumor of every neighbor reachable over such an edge.
    LocalBroadcast(Latency),
    /// Run for exactly this many rounds.
    FixedRounds(u64),
    /// Stop when the protocol reports every node idle and no exchange is in flight.
    Quiescent,
}

/// Configuration of a [`Simulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    seed: u64,
    mode: ExchangeMode,
    termination: Termination,
    max_rounds: u64,
    latencies_known: bool,
    tracked_rumor: Option<RumorId>,
}

impl SimConfig {
    /// Creates a configuration with the given RNG seed, non-blocking
    /// exchanges, all-to-all termination, and a generous round cap.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            mode: ExchangeMode::NonBlocking,
            termination: Termination::AllKnowAll,
            max_rounds: 5_000_000,
            latencies_known: false,
            tracked_rumor: None,
        }
    }

    /// Sets the exchange mode (non-blocking by default).
    pub fn mode(mut self, mode: ExchangeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the termination condition (all-to-all by default).
    pub fn termination(mut self, termination: Termination) -> Self {
        self.termination = termination;
        self
    }

    /// Sets the safety cap on the number of rounds.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Declares that nodes know the latencies of their incident edges from the
    /// start (Section 4 of the paper).  When `false` (the default), a latency
    /// is revealed to an endpoint only after an exchange over that edge completes.
    pub fn latencies_known(mut self, known: bool) -> Self {
        self.latencies_known = known;
        self
    }

    /// Tracks the per-node first time a specific rumor is learned (reported in
    /// [`RunReport::informed_times`]).
    pub fn track_rumor(mut self, rumor: RumorId) -> Self {
        self.tracked_rumor = Some(rumor);
        self
    }
}

/// Everything a protocol can see about one node at the start of a round.
#[derive(Debug)]
pub struct NodeView<'a> {
    /// The node being scheduled.
    pub node: NodeId,
    /// Current round (0-based).
    pub round: u64,
    /// The node's current rumor set.
    pub rumors: &'a RumorSet,
    /// Incident `(neighbor, edge)` pairs in neighbor-id order.
    pub neighbors: &'a [(NodeId, EdgeId)],
    /// `true` if the node may initiate an exchange this round
    /// (always true in non-blocking mode).
    pub can_initiate: bool,
    /// Number of exchanges this node initiated that are still in flight.
    pub pending_own: usize,
    latency_oracle: LatencyOracle<'a>,
}

#[derive(Debug)]
struct LatencyOracle<'a> {
    graph: &'a Graph,
    known_all: bool,
    discovered: &'a HashMap<EdgeId, Latency>,
}

impl NodeView<'_> {
    /// Latency of an incident edge, if this node is entitled to know it:
    /// either latencies are globally known ([`SimConfig::latencies_known`]) or
    /// an exchange over the edge has completed at this node.
    pub fn known_latency(&self, edge: EdgeId) -> Option<Latency> {
        if self.latency_oracle.known_all {
            Some(self.latency_oracle.graph.latency(edge))
        } else {
            self.latency_oracle.discovered.get(&edge).copied()
        }
    }

    /// Number of nodes in the network (the paper assumes a polynomial upper
    /// bound on `n` is known; we expose the exact value for simplicity).
    pub fn network_size(&self) -> usize {
        self.latency_oracle.graph.node_count()
    }
}

/// A completed bidirectional exchange, as seen by one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeEvent {
    /// The other endpoint of the exchange.
    pub peer: NodeId,
    /// The edge the exchange used.
    pub edge: EdgeId,
    /// The latency of that edge (revealed by the completed exchange).
    pub latency: Latency,
    /// `true` if this endpoint initiated the exchange.
    pub initiated_here: bool,
    /// Round at which the exchange completed.
    pub round: u64,
}

/// A gossip protocol: per-round decisions plus completion callbacks.
///
/// The engine owns the rumor sets; a protocol only chooses which neighbor (if
/// any) each node contacts in each round.
pub trait Protocol {
    /// Human-readable protocol name (used in reports).
    fn name(&self) -> &'static str {
        "protocol"
    }

    /// Decides which neighbor `view.node` contacts this round, or `None` to stay silent.
    ///
    /// Returning a node that is not a neighbor is treated as staying silent.
    fn on_round(&mut self, view: &NodeView<'_>, rng: &mut SmallRng) -> Option<NodeId>;

    /// Notification that an exchange incident to `node` completed.
    fn on_exchange(&mut self, node: NodeId, event: &ExchangeEvent) {
        let _ = (node, event);
    }

    /// Whether this node has finished its program (used by [`Termination::Quiescent`]).
    fn is_idle(&self, node: NodeId) -> bool {
        let _ = node;
        false
    }
}

struct InFlight {
    initiator: NodeId,
    responder: NodeId,
    edge: EdgeId,
    completes_at: u64,
    /// Snapshot of the initiator's rumors at initiation time.
    initiator_snapshot: RumorSet,
    /// Snapshot of the responder's rumors at initiation time.
    responder_snapshot: RumorSet,
}

/// The synchronous round simulator.
pub struct Simulation<'g> {
    graph: &'g Graph,
    config: SimConfig,
    rumors: Vec<RumorSet>,
}

impl<'g> Simulation<'g> {
    /// Creates a simulation where node `i` initially knows exactly rumor `i`
    /// (the all-to-all starting state, which also covers one-to-all: just
    /// terminate on [`Termination::AllKnowRumorOf`]).
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        let n = graph.node_count();
        let rumors = (0..n)
            .map(|i| RumorSet::singleton(n, RumorId::from(i)))
            .collect();
        Simulation {
            graph,
            config,
            rumors,
        }
    }

    /// Creates a simulation with explicitly provided initial rumor sets
    /// (used to chain protocol phases, e.g. the pattern-broadcast schedule).
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the node count.
    pub fn with_rumors(graph: &'g Graph, config: SimConfig, initial: Vec<RumorSet>) -> Self {
        assert_eq!(
            initial.len(),
            graph.node_count(),
            "one rumor set per node is required"
        );
        Simulation {
            graph,
            config,
            rumors: initial,
        }
    }

    /// Read access to the current rumor sets (indexed by node).
    pub fn rumors(&self) -> &[RumorSet] {
        &self.rumors
    }

    /// Consumes the simulation and returns the rumor sets (after a run).
    pub fn into_rumors(self) -> Vec<RumorSet> {
        self.rumors
    }

    /// Runs `protocol` until the termination condition or the round cap is
    /// reached and returns the run report.  The simulation can be run again
    /// (with the same or another protocol) to continue from the reached state.
    pub fn run<P: Protocol>(&mut self, protocol: &mut P) -> RunReport {
        let n = self.graph.node_count();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut discovered: Vec<HashMap<EdgeId, Latency>> = vec![HashMap::new(); n];
        let mut pending_own = vec![0usize; n];
        let mut activations: u64 = 0;
        let mut informed_times: Vec<Option<u64>> = match self.config.tracked_rumor {
            Some(r) => self
                .rumors
                .iter()
                .map(|s| if s.contains(r) { Some(0) } else { None })
                .collect(),
            None => Vec::new(),
        };

        let mut round: u64 = 0;
        let mut completed = self.is_done(&self.config.termination, 0, protocol, &in_flight);
        if completed {
            return self.report(protocol, 0, activations, true, informed_times);
        }

        while round < self.config.max_rounds {
            // 1. Deliver exchanges completing at the start of this round.
            let mut completions: Vec<InFlight> = Vec::new();
            in_flight.retain_mut(|ex| {
                if ex.completes_at == round {
                    completions.push(InFlight {
                        initiator: ex.initiator,
                        responder: ex.responder,
                        edge: ex.edge,
                        completes_at: ex.completes_at,
                        initiator_snapshot: std::mem::replace(
                            &mut ex.initiator_snapshot,
                            RumorSet::empty(0),
                        ),
                        responder_snapshot: std::mem::replace(
                            &mut ex.responder_snapshot,
                            RumorSet::empty(0),
                        ),
                    });
                    false
                } else {
                    true
                }
            });
            for ex in completions {
                let latency = self.graph.latency(ex.edge);
                pending_own[ex.initiator.index()] =
                    pending_own[ex.initiator.index()].saturating_sub(1);
                // Both endpoints merge the peer's snapshot taken at initiation.
                self.rumors[ex.initiator.index()].union_with(&ex.responder_snapshot);
                self.rumors[ex.responder.index()].union_with(&ex.initiator_snapshot);
                discovered[ex.initiator.index()].insert(ex.edge, latency);
                discovered[ex.responder.index()].insert(ex.edge, latency);
                if let Some(r) = self.config.tracked_rumor {
                    for endpoint in [ex.initiator, ex.responder] {
                        if informed_times[endpoint.index()].is_none()
                            && self.rumors[endpoint.index()].contains(r)
                        {
                            informed_times[endpoint.index()] = Some(round);
                        }
                    }
                }
                for (node, here) in [(ex.initiator, true), (ex.responder, false)] {
                    protocol.on_exchange(
                        node,
                        &ExchangeEvent {
                            peer: if here { ex.responder } else { ex.initiator },
                            edge: ex.edge,
                            latency,
                            initiated_here: here,
                            round,
                        },
                    );
                }
            }

            // 2. Check termination (conditions are evaluated on round boundaries).
            if self.is_done(&self.config.termination, round, protocol, &in_flight) {
                completed = true;
                break;
            }

            // 3. Let every node act.
            for i in 0..n {
                let node = NodeId::new(i);
                let can_initiate = match self.config.mode {
                    ExchangeMode::NonBlocking => true,
                    ExchangeMode::Blocking => pending_own[i] == 0,
                };
                let choice = {
                    let view = NodeView {
                        node,
                        round,
                        rumors: &self.rumors[i],
                        neighbors: neighbor_slice(self.graph, node),
                        can_initiate,
                        pending_own: pending_own[i],
                        latency_oracle: LatencyOracle {
                            graph: self.graph,
                            known_all: self.config.latencies_known,
                            discovered: &discovered[i],
                        },
                    };
                    protocol.on_round(&view, &mut rng)
                };
                let Some(target) = choice else { continue };
                if !can_initiate {
                    continue;
                }
                let Some(edge) = self.graph.find_edge(node, target) else {
                    continue;
                };
                let latency = self.graph.latency(edge);
                activations += 1;
                pending_own[i] += 1;
                in_flight.push(InFlight {
                    initiator: node,
                    responder: target,
                    edge,
                    completes_at: round + latency,
                    initiator_snapshot: self.rumors[i].clone(),
                    responder_snapshot: self.rumors[target.index()].clone(),
                });
            }

            round += 1;
        }

        if !completed {
            completed = self.is_done(&self.config.termination, round, protocol, &in_flight);
        }
        self.report(protocol, round, activations, completed, informed_times)
    }

    fn is_done<P: Protocol>(
        &self,
        termination: &Termination,
        round: u64,
        protocol: &P,
        in_flight: &[InFlight],
    ) -> bool {
        match *termination {
            Termination::AllKnowRumorOf(source) => {
                let r = RumorId::of_node(source);
                self.rumors.iter().all(|s| s.contains(r))
            }
            Termination::AllKnowAll => self.rumors.iter().all(RumorSet::is_full),
            Termination::LocalBroadcast(bound) => self.graph.nodes().all(|v| {
                self.graph.neighbors(v).all(|(w, e)| {
                    self.graph.latency(e) > bound
                        || self.rumors[v.index()].contains(RumorId::of_node(w))
                })
            }),
            Termination::FixedRounds(target) => round >= target,
            Termination::Quiescent => {
                in_flight.is_empty() && self.graph.nodes().all(|v| protocol.is_idle(v))
            }
        }
    }

    fn report<P: Protocol>(
        &self,
        protocol: &P,
        rounds: u64,
        activations: u64,
        completed: bool,
        informed_times: Vec<Option<u64>>,
    ) -> RunReport {
        RunReport {
            protocol: protocol.name().to_string(),
            rounds,
            activations,
            messages: activations * 2,
            completed,
            informed_times: if informed_times.is_empty() {
                None
            } else {
                Some(informed_times)
            },
            min_rumors_known: self.rumors.iter().map(RumorSet::len).min().unwrap_or(0),
        }
    }
}

fn neighbor_slice(graph: &Graph, node: NodeId) -> &[(NodeId, EdgeId)] {
    graph.neighbor_slice(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{RandomPushPull, RoundRobinFlood, Silent};
    use gossip_graph::generators;

    #[test]
    fn silent_protocol_never_completes() {
        let g = generators::clique(4, 1).unwrap();
        let config = SimConfig::new(1)
            .termination(Termination::AllKnowAll)
            .max_rounds(50);
        let report = Simulation::new(&g, config).run(&mut Silent);
        assert!(!report.completed);
        assert_eq!(report.activations, 0);
        assert_eq!(report.rounds, 50);
    }

    #[test]
    fn push_pull_completes_one_to_all_on_clique() {
        let g = generators::clique(16, 1).unwrap();
        let config = SimConfig::new(3)
            .termination(Termination::AllKnowRumorOf(NodeId::new(0)))
            .track_rumor(RumorId(0));
        let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
        assert!(report.completed);
        assert!(report.rounds <= 40);
        let times = report.informed_times.unwrap();
        assert!(times.iter().all(Option::is_some));
        assert_eq!(times[0], Some(0));
    }

    #[test]
    fn latency_delays_completion() {
        let slow = generators::clique(8, 10).unwrap();
        let fast = generators::clique(8, 1).unwrap();
        let mk = |g| {
            let config = SimConfig::new(5).termination(Termination::AllKnowAll);
            Simulation::new(g, config).run(&mut RandomPushPull::new(g))
        };
        let slow_report = mk(&slow);
        let fast_report = mk(&fast);
        assert!(slow_report.completed && fast_report.completed);
        // Every exchange on the slow clique needs 10 rounds, so completion
        // cannot beat 10 rounds and should be clearly slower than the fast clique.
        assert!(slow_report.rounds >= 10);
        assert!(
            slow_report.rounds > 2 * fast_report.rounds,
            "latency-10 clique ({}) should be much slower than latency-1 clique ({})",
            slow_report.rounds,
            fast_report.rounds
        );
    }

    #[test]
    fn blocking_mode_throttles_initiations() {
        let g = generators::clique(6, 5).unwrap();
        let blocking = SimConfig::new(9)
            .mode(ExchangeMode::Blocking)
            .termination(Termination::FixedRounds(50));
        let nonblocking = SimConfig::new(9).termination(Termination::FixedRounds(50));
        let b = Simulation::new(&g, blocking).run(&mut RoundRobinFlood::new(&g));
        let nb = Simulation::new(&g, nonblocking).run(&mut RoundRobinFlood::new(&g));
        // With latency-5 edges a blocking node can start at most 1 exchange
        // per 5 rounds; non-blocking can start one every round.
        assert!(b.activations * 3 < nb.activations);
    }

    #[test]
    fn local_broadcast_termination() {
        let g = generators::dumbbell(4, 50).unwrap();
        // Local broadcast over fast edges only: the bridge (latency 50) is excluded.
        let config = SimConfig::new(4)
            .termination(Termination::LocalBroadcast(1))
            .max_rounds(500);
        let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
        assert!(report.completed);
        assert!(report.rounds < 500);
    }

    #[test]
    fn fixed_round_termination_runs_exactly_that_long() {
        let g = generators::cycle(5, 1).unwrap();
        let config = SimConfig::new(2).termination(Termination::FixedRounds(17));
        let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
        assert_eq!(report.rounds, 17);
        assert!(report.completed);
    }

    #[test]
    fn with_rumors_chains_state_between_runs() {
        let g = generators::path(4, 1).unwrap();
        let config = SimConfig::new(6).termination(Termination::FixedRounds(3));
        let mut sim = Simulation::new(&g, config);
        let _ = sim.run(&mut RoundRobinFlood::new(&g));
        let mid = sim.into_rumors();
        let knew: usize = mid.iter().map(RumorSet::len).sum();

        let config2 = SimConfig::new(6).termination(Termination::AllKnowAll);
        let mut sim2 = Simulation::with_rumors(&g, config2, mid);
        let report = sim2.run(&mut RoundRobinFlood::new(&g));
        assert!(report.completed);
        let final_total: usize = sim2.rumors().iter().map(RumorSet::len).sum();
        assert!(final_total >= knew);
        assert_eq!(final_total, 16);
    }

    #[test]
    fn latency_discovery_through_exchanges() {
        // A protocol can see an incident latency only after using the edge.
        struct Probe {
            learned: Vec<Option<Latency>>,
        }
        impl Protocol for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
                if view.node.index() == 0 {
                    let (nbr, edge) = view.neighbors[0];
                    let idx = view.round as usize % self.learned.len();
                    self.learned[idx] = view.known_latency(edge);
                    return Some(nbr);
                }
                None
            }
        }
        let g = generators::path(2, 7).unwrap();
        let config = SimConfig::new(1).termination(Termination::FixedRounds(10));
        let mut p = Probe {
            learned: vec![None; 10],
        };
        let _ = Simulation::new(&g, config).run(&mut p);
        // Round 0: unknown; after the first exchange completes (round 7) it is known.
        assert_eq!(p.learned[0], None);
        assert_eq!(p.learned[9], Some(7));
    }

    #[test]
    fn known_latency_mode_reveals_latencies_immediately() {
        struct Check;
        impl Protocol for Check {
            fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
                let (_, edge) = view.neighbors[0];
                assert_eq!(view.known_latency(edge), Some(7));
                None
            }
        }
        let g = generators::path(2, 7).unwrap();
        let config = SimConfig::new(1)
            .latencies_known(true)
            .termination(Termination::FixedRounds(2));
        let _ = Simulation::new(&g, config).run(&mut Check);
    }
}
