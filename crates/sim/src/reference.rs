//! The reference engine: the original snapshot-per-exchange implementation.
//!
//! [`ReferenceSimulation`] is a line-for-line preservation of the simulator
//! before the snapshot-free rewrite (see the [`crate::engine`] module docs):
//! it clones both endpoints' rumor bitsets at initiation, scans the whole
//! in-flight list every round, and re-scans all rumor sets for every
//! termination check.  It is `O(n)`-per-exchange slow by design — its job is
//! to pin the *semantics*, not to be fast.
//!
//! The `engine_equivalence` integration suite runs both engines over the
//! standard scenario grid and requires byte-identical [`RunReport`]s and
//! final rumor states; the property tests in the same suite do the same over
//! random graphs.  Any intentional semantic change to the engine must be
//! mirrored here (the only post-rewrite change so far: rejected non-neighbor
//! targets are counted and reported, identically in both engines).
//!
//! This module is exported for the test suites and benchmarks; it is not part
//! of the supported API surface.

use std::collections::HashMap;

use gossip_graph::{EdgeId, Graph, Latency, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::{
    ExchangeEvent, ExchangeMode, LatencyOracle, NodeView, OracleSource, Protocol, SimConfig,
    Termination,
};
use crate::report::RunReport;
use crate::rumor::{RumorId, RumorSet};

struct InFlight {
    initiator: NodeId,
    responder: NodeId,
    edge: EdgeId,
    completes_at: u64,
    /// Snapshot of the initiator's rumors at initiation time.
    initiator_snapshot: RumorSet,
    /// Snapshot of the responder's rumors at initiation time.
    responder_snapshot: RumorSet,
}

/// The original snapshot-based simulator, kept as the semantic oracle for the
/// rewritten engine.
pub struct ReferenceSimulation<'g> {
    graph: &'g Graph,
    config: SimConfig,
    rumors: Vec<RumorSet>,
}

impl<'g> ReferenceSimulation<'g> {
    /// Creates a simulation where node `i` initially knows exactly rumor `i`.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        let n = graph.node_count();
        let rumors = (0..n)
            .map(|i| RumorSet::singleton(n, RumorId::from(i)))
            .collect();
        ReferenceSimulation {
            graph,
            config,
            rumors,
        }
    }

    /// Creates a simulation with explicitly provided initial rumor sets.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the node count.
    pub fn with_rumors(graph: &'g Graph, config: SimConfig, initial: Vec<RumorSet>) -> Self {
        assert_eq!(
            initial.len(),
            graph.node_count(),
            "one rumor set per node is required"
        );
        ReferenceSimulation {
            graph,
            config,
            rumors: initial,
        }
    }

    /// Read access to the current rumor sets (indexed by node).
    pub fn rumors(&self) -> &[RumorSet] {
        &self.rumors
    }

    /// Consumes the simulation and returns the rumor sets (after a run).
    pub fn into_rumors(self) -> Vec<RumorSet> {
        self.rumors
    }

    /// Runs `protocol` with the original snapshot-per-exchange semantics.
    pub fn run<P: Protocol>(&mut self, protocol: &mut P) -> RunReport {
        let n = self.graph.node_count();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut in_flight: Vec<InFlight> = Vec::new();
        // gossip-lint: allow(unordered-iter): frozen reference engine; keyed inserts and `get` only, never iterated
        let mut discovered: Vec<HashMap<EdgeId, Latency>> = vec![HashMap::new(); n];
        let mut pending_own = vec![0usize; n];
        let mut activations: u64 = 0;
        let mut rejections: u64 = 0;
        let mut informed_times: Vec<Option<u64>> = match self.config.tracked_rumor {
            Some(r) => self
                .rumors
                .iter()
                .map(|s| if s.contains(r) { Some(0) } else { None })
                .collect(),
            None => Vec::new(),
        };

        let mut round: u64 = 0;
        let mut completed = self.is_done(&self.config.termination, 0, protocol, &in_flight);
        if completed {
            return self.report(protocol, 0, activations, rejections, true, informed_times);
        }

        while round < self.config.max_rounds {
            // 1. Deliver exchanges completing at the start of this round.
            let mut completions: Vec<InFlight> = Vec::new();
            in_flight.retain_mut(|ex| {
                if ex.completes_at == round {
                    completions.push(InFlight {
                        initiator: ex.initiator,
                        responder: ex.responder,
                        edge: ex.edge,
                        completes_at: ex.completes_at,
                        initiator_snapshot: std::mem::replace(
                            &mut ex.initiator_snapshot,
                            RumorSet::empty(0),
                        ),
                        responder_snapshot: std::mem::replace(
                            &mut ex.responder_snapshot,
                            RumorSet::empty(0),
                        ),
                    });
                    false
                } else {
                    true
                }
            });
            for ex in completions {
                let latency = self.graph.latency(ex.edge);
                pending_own[ex.initiator.index()] =
                    pending_own[ex.initiator.index()].saturating_sub(1);
                // Both endpoints merge the peer's snapshot taken at initiation.
                self.rumors[ex.initiator.index()].union_with(&ex.responder_snapshot);
                self.rumors[ex.responder.index()].union_with(&ex.initiator_snapshot);
                discovered[ex.initiator.index()].insert(ex.edge, latency);
                discovered[ex.responder.index()].insert(ex.edge, latency);
                if let Some(r) = self.config.tracked_rumor {
                    for endpoint in [ex.initiator, ex.responder] {
                        if informed_times[endpoint.index()].is_none()
                            && self.rumors[endpoint.index()].contains(r)
                        {
                            informed_times[endpoint.index()] = Some(round);
                        }
                    }
                }
                for (node, here) in [(ex.initiator, true), (ex.responder, false)] {
                    protocol.on_exchange(
                        node,
                        &ExchangeEvent {
                            peer: if here { ex.responder } else { ex.initiator },
                            edge: ex.edge,
                            latency,
                            initiated_here: here,
                            round,
                        },
                    );
                }
            }

            // 2. Check termination (conditions are evaluated on round boundaries).
            if self.is_done(&self.config.termination, round, protocol, &in_flight) {
                completed = true;
                break;
            }

            // 3. Let every node act.
            for i in 0..n {
                let node = NodeId::new(i);
                let can_initiate = match self.config.mode {
                    ExchangeMode::NonBlocking => true,
                    ExchangeMode::Blocking => pending_own[i] == 0,
                };
                let choice = {
                    let view = NodeView {
                        node,
                        round,
                        rumors: &self.rumors[i],
                        neighbors: self.graph.neighbor_slice(node),
                        can_initiate,
                        pending_own: pending_own[i],
                        latency_oracle: LatencyOracle {
                            graph: self.graph,
                            known_all: self.config.latencies_known,
                            source: OracleSource::Map(&discovered[i]),
                        },
                    };
                    protocol.on_round(&view, &mut rng)
                };
                let Some(target) = choice else { continue };
                if !can_initiate {
                    continue;
                }
                let Some(edge) = self.graph.find_edge(node, target) else {
                    rejections += 1;
                    protocol.on_rejected(node, target, round);
                    continue;
                };
                let latency = self.graph.latency(edge);
                activations += 1;
                pending_own[i] += 1;
                in_flight.push(InFlight {
                    initiator: node,
                    responder: target,
                    edge,
                    completes_at: round + latency,
                    initiator_snapshot: self.rumors[i].clone(),
                    responder_snapshot: self.rumors[target.index()].clone(),
                });
            }

            round += 1;
        }

        if !completed {
            completed = self.is_done(&self.config.termination, round, protocol, &in_flight);
        }
        self.report(
            protocol,
            round,
            activations,
            rejections,
            completed,
            informed_times,
        )
    }

    // gossip-lint: allow(panic-path): rumor vec is sized n at construction; node ids are dense
    fn is_done<P: Protocol>(
        &self,
        termination: &Termination,
        round: u64,
        protocol: &P,
        in_flight: &[InFlight],
    ) -> bool {
        match *termination {
            Termination::AllKnowRumorOf(source) => {
                let r = RumorId::of_node(source);
                self.rumors.iter().all(|s| s.contains(r))
            }
            Termination::AllKnowAll => self.rumors.iter().all(RumorSet::is_full),
            Termination::LocalBroadcast(bound) => self.graph.nodes().all(|v| {
                self.graph.neighbors(v).all(|(w, e)| {
                    self.graph.latency(e) > bound
                        || self.rumors[v.index()].contains(RumorId::of_node(w))
                })
            }),
            Termination::FixedRounds(target) => round >= target,
            Termination::Quiescent => {
                in_flight.is_empty() && self.graph.nodes().all(|v| protocol.is_idle(v))
            }
        }
    }

    fn report<P: Protocol>(
        &self,
        protocol: &P,
        rounds: u64,
        activations: u64,
        rejections: u64,
        completed: bool,
        informed_times: Vec<Option<u64>>,
    ) -> RunReport {
        RunReport {
            protocol: protocol.name().to_string(),
            rounds,
            activations,
            messages: activations * 2,
            completed,
            rejections,
            informed_times: if informed_times.is_empty() {
                None
            } else {
                Some(informed_times)
            },
            min_rumors_known: self.rumors.iter().map(RumorSet::len).min().unwrap_or(0),
            // The reference engine predates the interval-log/shadow state the
            // memory counters describe; equivalence compares
            // `RunReport::semantics()`, which strips this field.
            mem: None,
        }
    }
}
