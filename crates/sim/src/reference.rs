//! The reference engine: the original snapshot-per-exchange implementation.
//!
//! [`ReferenceSimulation`] is a line-for-line preservation of the simulator
//! before the snapshot-free rewrite (see the [`crate::engine`] module docs):
//! it clones both endpoints' rumor bitsets at initiation, scans the whole
//! in-flight list every round, and re-scans all rumor sets for every
//! termination check.  It is `O(n)`-per-exchange slow by design — its job is
//! to pin the *semantics*, not to be fast.
//!
//! The `engine_equivalence` integration suite runs both engines over the
//! standard scenario grid and requires byte-identical [`RunReport`]s and
//! final rumor states; the property tests in the same suite do the same over
//! random graphs.  Any intentional semantic change to the engine must be
//! mirrored here (post-rewrite changes so far: rejected non-neighbor targets
//! are counted and reported, and the [`crate::fault`] semantics — crash-stop
//! churn, link cuts, message loss, graceful-degradation reporting — are
//! interpreted identically in both engines, pinned by the
//! `fault_equivalence` suite).
//!
//! This module is exported for the test suites and benchmarks; it is not part
//! of the supported API surface.

use std::collections::HashMap;

use gossip_graph::{AliveView, EdgeId, Graph, Latency, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::{
    ExchangeEvent, ExchangeMode, LatencyOracle, NodeView, OracleSource, Protocol, SimConfig,
    Termination,
};
use crate::fault::{self, FaultEvent, FaultPlan};
use crate::report::{FaultReport, RunReport};
use crate::rumor::{RumorId, RumorSet};

struct InFlight {
    initiator: NodeId,
    responder: NodeId,
    edge: EdgeId,
    completes_at: u64,
    /// Snapshot of the initiator's rumors at initiation time.
    initiator_snapshot: RumorSet,
    /// Snapshot of the responder's rumors at initiation time.
    responder_snapshot: RumorSet,
    /// Lost in transit: times out at `completes_at` without delivering.
    lost: bool,
}

/// The original snapshot-based simulator, kept as the semantic oracle for the
/// rewritten engine.
pub struct ReferenceSimulation<'g> {
    graph: &'g Graph,
    config: SimConfig,
    rumors: Vec<RumorSet>,
}

impl<'g> ReferenceSimulation<'g> {
    /// Creates a simulation where node `i` initially knows exactly rumor `i`.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        let n = graph.node_count();
        let rumors = (0..n)
            .map(|i| RumorSet::singleton(n, RumorId::from(i)))
            .collect();
        ReferenceSimulation {
            graph,
            config,
            rumors,
        }
    }

    /// Creates a simulation with explicitly provided initial rumor sets.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the node count.
    pub fn with_rumors(graph: &'g Graph, config: SimConfig, initial: Vec<RumorSet>) -> Self {
        assert_eq!(
            initial.len(),
            graph.node_count(),
            "one rumor set per node is required"
        );
        ReferenceSimulation {
            graph,
            config,
            rumors: initial,
        }
    }

    /// Read access to the current rumor sets (indexed by node).
    pub fn rumors(&self) -> &[RumorSet] {
        &self.rumors
    }

    /// Consumes the simulation and returns the rumor sets (after a run).
    pub fn into_rumors(self) -> Vec<RumorSet> {
        self.rumors
    }

    /// Runs `protocol` with the original snapshot-per-exchange semantics.
    pub fn run<P: Protocol>(&mut self, protocol: &mut P) -> RunReport {
        let n = self.graph.node_count();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut in_flight: Vec<InFlight> = Vec::new();
        // gossip-lint: allow(unordered-iter): frozen reference engine; keyed inserts and `get` only, never iterated
        let mut discovered: Vec<HashMap<EdgeId, Latency>> = vec![HashMap::new(); n];
        let mut pending_own = vec![0usize; n];
        let mut activations: u64 = 0;
        let mut rejections: u64 = 0;
        let mut informed_times: Vec<Option<u64>> = match self.config.tracked_rumor {
            Some(r) => self
                .rumors
                .iter()
                .map(|s| if s.contains(r) { Some(0) } else { None })
                .collect(),
            None => Vec::new(),
        };

        // Fault machinery — same schedule, same round-start semantics as the
        // snapshot-free engine (see [`crate::fault`]); the `fault_equivalence`
        // suite pins the two interpretations byte-identical.
        let fault_plan = self.config.faults.clone();
        let fault_events: &[(u64, FaultEvent)] = match &fault_plan {
            Some(plan) => plan.events(),
            None => &[],
        };
        let mut fault_cursor = 0usize;
        let mut loss = fault_plan.as_ref().and_then(FaultPlan::loss_stream);
        let mut alive: Option<AliveView> = fault_plan.as_ref().map(|_| AliveView::new(self.graph));
        let (mut crashes, mut rejoins, mut links_cut) = (0u64, 0u64, 0u64);
        let (mut cancelled, mut lost_count) = (0u64, 0u64);
        // Rejoined nodes still re-disseminating, as `(node, rejoin round)`.
        let mut pending_recovery: Vec<(usize, u64)> = Vec::new();
        let mut recovery_latency: Option<u64> = None;
        let recovery_target: Option<RumorId> =
            self.config.tracked_rumor.or(match self.config.termination {
                Termination::AllKnowRumorOf(source) => Some(RumorId::of_node(source)),
                _ => None,
            });
        let note_recovery = |latency: u64, agg: &mut Option<u64>| {
            *agg = Some(agg.map_or(latency, |cur| cur.max(latency)));
        };

        let mut round: u64 = 0;
        let mut completed = self.is_done(
            &self.config.termination,
            0,
            protocol,
            &in_flight,
            alive.as_ref(),
        );

        while !completed && round < self.config.max_rounds {
            // 0. Apply fault events scheduled for this round, before this
            //    round's deliveries: an exchange completing now but touching
            //    a node crashing now (or an edge cut now) is cancelled.
            while fault_events
                .get(fault_cursor)
                .is_some_and(|&(r, _)| r <= round)
            {
                let (_, event) = fault_events[fault_cursor];
                fault_cursor += 1;
                let av = alive.as_mut().expect("fault events imply an alive view");
                match event {
                    FaultEvent::Crash(v) => {
                        if !av.kill_node(self.graph, v) {
                            continue; // already dead: uncounted no-op
                        }
                        crashes += 1;
                        in_flight.retain(|ex| {
                            if ex.initiator != v && ex.responder != v {
                                return true;
                            }
                            cancelled += 1;
                            if ex.initiator != v {
                                pending_own[ex.initiator.index()] =
                                    pending_own[ex.initiator.index()].saturating_sub(1);
                            }
                            false
                        });
                        pending_own[v.index()] = 0;
                        if let Some(pos) =
                            pending_recovery.iter().position(|&(i, _)| i == v.index())
                        {
                            pending_recovery.swap_remove(pos);
                        }
                    }
                    FaultEvent::Rejoin(v) => {
                        if !av.revive_node(self.graph, v) {
                            continue; // already alive: uncounted no-op
                        }
                        rejoins += 1;
                        // Amnesiac restart: only its own rumor, no history,
                        // no discovered latencies.
                        let universe = self.rumors[v.index()].universe();
                        self.rumors[v.index()] = RumorSet::singleton(universe, RumorId::of_node(v));
                        discovered[v.index()].clear();
                        if let Some(r) = self.config.tracked_rumor {
                            if informed_times[v.index()].is_none()
                                && self.rumors[v.index()].contains(r)
                            {
                                informed_times[v.index()] = Some(round);
                            }
                        }
                        let recovered = match recovery_target {
                            Some(r) => self.rumors[v.index()].contains(r),
                            None => self.rumors[v.index()].is_full(),
                        };
                        if recovered {
                            note_recovery(0, &mut recovery_latency);
                        } else {
                            pending_recovery.push((v.index(), round));
                        }
                    }
                    FaultEvent::CutLink(e) => {
                        if !av.cut_edge(self.graph, e) {
                            continue; // already cut: uncounted no-op
                        }
                        links_cut += 1;
                        in_flight.retain(|ex| {
                            if ex.edge != e {
                                return true;
                            }
                            cancelled += 1;
                            pending_own[ex.initiator.index()] =
                                pending_own[ex.initiator.index()].saturating_sub(1);
                            false
                        });
                    }
                }
            }

            // 1. Deliver exchanges completing at the start of this round.
            let mut completions: Vec<InFlight> = Vec::new();
            in_flight.retain_mut(|ex| {
                if ex.completes_at == round {
                    completions.push(InFlight {
                        initiator: ex.initiator,
                        responder: ex.responder,
                        edge: ex.edge,
                        completes_at: ex.completes_at,
                        initiator_snapshot: std::mem::replace(
                            &mut ex.initiator_snapshot,
                            RumorSet::empty(0),
                        ),
                        responder_snapshot: std::mem::replace(
                            &mut ex.responder_snapshot,
                            RumorSet::empty(0),
                        ),
                        lost: ex.lost,
                    });
                    false
                } else {
                    true
                }
            });
            for ex in completions {
                let latency = self.graph.latency(ex.edge);
                pending_own[ex.initiator.index()] =
                    pending_own[ex.initiator.index()].saturating_sub(1);
                if ex.lost {
                    // Timed out in transit: no merge, no latency discovery,
                    // no `on_exchange`.
                    lost_count += 1;
                    continue;
                }
                // Both endpoints merge the peer's snapshot taken at initiation.
                self.rumors[ex.initiator.index()].union_with(&ex.responder_snapshot);
                self.rumors[ex.responder.index()].union_with(&ex.initiator_snapshot);
                discovered[ex.initiator.index()].insert(ex.edge, latency);
                discovered[ex.responder.index()].insert(ex.edge, latency);
                if let Some(r) = self.config.tracked_rumor {
                    for endpoint in [ex.initiator, ex.responder] {
                        if informed_times[endpoint.index()].is_none()
                            && self.rumors[endpoint.index()].contains(r)
                        {
                            informed_times[endpoint.index()] = Some(round);
                        }
                    }
                }
                if !pending_recovery.is_empty() {
                    for endpoint in [ex.initiator, ex.responder] {
                        let i = endpoint.index();
                        if let Some(pos) = pending_recovery.iter().position(|&(v, _)| v == i) {
                            let recovered = match recovery_target {
                                Some(r) => self.rumors[i].contains(r),
                                None => self.rumors[i].is_full(),
                            };
                            if recovered {
                                let (_, since) = pending_recovery.swap_remove(pos);
                                note_recovery(round - since, &mut recovery_latency);
                            }
                        }
                    }
                }
                for (node, here) in [(ex.initiator, true), (ex.responder, false)] {
                    protocol.on_exchange(
                        node,
                        &ExchangeEvent {
                            peer: if here { ex.responder } else { ex.initiator },
                            edge: ex.edge,
                            latency,
                            initiated_here: here,
                            round,
                        },
                    );
                }
            }

            // 2. Check termination (conditions are evaluated on round boundaries).
            if self.is_done(
                &self.config.termination,
                round,
                protocol,
                &in_flight,
                alive.as_ref(),
            ) {
                completed = true;
                break;
            }

            // 3. Let every *alive* node act.
            for i in 0..n {
                let node = NodeId::new(i);
                if let Some(av) = &alive {
                    if !av.is_node_alive(node) {
                        continue;
                    }
                }
                let can_initiate = match self.config.mode {
                    ExchangeMode::NonBlocking => true,
                    ExchangeMode::Blocking => pending_own[i] == 0,
                };
                let choice = {
                    let view = NodeView {
                        node,
                        round,
                        rumors: &self.rumors[i],
                        neighbors: match &alive {
                            Some(av) => av.neighbor_slice(self.graph, node),
                            None => self.graph.neighbor_slice(node),
                        },
                        can_initiate,
                        pending_own: pending_own[i],
                        latency_oracle: LatencyOracle {
                            graph: self.graph,
                            known_all: self.config.latencies_known,
                            source: OracleSource::Map(&discovered[i]),
                        },
                    };
                    protocol.on_round(&view, &mut rng)
                };
                let Some(target) = choice else { continue };
                if !can_initiate {
                    continue;
                }
                let Some(edge) = self.graph.find_edge(node, target) else {
                    rejections += 1;
                    protocol.on_rejected(node, target, round);
                    continue;
                };
                if let Some(av) = &alive {
                    // A dead peer or cut edge rejects like a non-neighbor.
                    if !av.is_edge_alive(edge) || !av.is_node_alive(target) {
                        rejections += 1;
                        protocol.on_rejected(node, target, round);
                        continue;
                    }
                }
                let latency = self.graph.latency(edge);
                activations += 1;
                pending_own[i] += 1;
                in_flight.push(InFlight {
                    initiator: node,
                    responder: target,
                    edge,
                    completes_at: round + latency,
                    initiator_snapshot: self.rumors[i].clone(),
                    responder_snapshot: self.rumors[target.index()].clone(),
                    // Drawn exactly once per *accepted* initiation, from the
                    // dedicated loss stream — the same call points as the
                    // snapshot-free engine, keeping the streams aligned.
                    lost: fault::draw_loss(&mut loss),
                });
            }

            round += 1;
        }

        if !completed {
            completed = self.is_done(
                &self.config.termination,
                round,
                protocol,
                &in_flight,
                alive.as_ref(),
            );
        }
        let faults = alive.map(|av| {
            let (residual_components, largest_component) = av.residual_components(self.graph);
            FaultReport {
                crashes,
                rejoins,
                links_cut,
                exchanges_cancelled: cancelled,
                exchanges_lost: lost_count,
                alive_nodes: av.alive_count() as u64,
                residual_components,
                largest_component,
                stranded_rumors: fault::stranded_rumors(&self.rumors, &av),
                recovery_latency,
            }
        });
        self.report(
            protocol,
            round,
            activations,
            rejections,
            completed,
            informed_times,
            faults,
        )
    }

    // gossip-lint: allow(panic-path): rumor vec is sized n at construction; node ids are dense
    fn is_done<P: Protocol>(
        &self,
        termination: &Termination,
        round: u64,
        protocol: &P,
        in_flight: &[InFlight],
        alive: Option<&AliveView>,
    ) -> bool {
        // Under faults, dissemination conditions quantify over *alive* nodes
        // and un-cut edges only (vacuously true with no node alive).
        let node_alive = |v: NodeId| alive.is_none_or(|a| a.is_node_alive(v));
        let edge_alive = |e: EdgeId| alive.is_none_or(|a| a.is_edge_alive(e));
        match *termination {
            Termination::AllKnowRumorOf(source) => {
                let r = RumorId::of_node(source);
                self.graph
                    .nodes()
                    .all(|v| !node_alive(v) || self.rumors[v.index()].contains(r))
            }
            Termination::AllKnowAll => self
                .graph
                .nodes()
                .all(|v| !node_alive(v) || self.rumors[v.index()].is_full()),
            Termination::LocalBroadcast(bound) => self.graph.nodes().all(|v| {
                !node_alive(v)
                    || self.graph.neighbors(v).all(|(w, e)| {
                        self.graph.latency(e) > bound
                            || !node_alive(w)
                            || !edge_alive(e)
                            || self.rumors[v.index()].contains(RumorId::of_node(w))
                    })
            }),
            Termination::FixedRounds(target) => round >= target,
            Termination::Quiescent => {
                in_flight.is_empty()
                    && self
                        .graph
                        .nodes()
                        .all(|v| !node_alive(v) || protocol.is_idle(v))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn report<P: Protocol>(
        &self,
        protocol: &P,
        rounds: u64,
        activations: u64,
        rejections: u64,
        completed: bool,
        informed_times: Vec<Option<u64>>,
        faults: Option<FaultReport>,
    ) -> RunReport {
        RunReport {
            protocol: protocol.name().to_string(),
            rounds,
            activations,
            messages: activations * 2,
            completed,
            rejections,
            informed_times: if informed_times.is_empty() {
                None
            } else {
                Some(informed_times)
            },
            min_rumors_known: self.rumors.iter().map(RumorSet::len).min().unwrap_or(0),
            faults,
            // The reference engine predates the interval-log/shadow state the
            // memory counters describe; equivalence compares
            // `RunReport::semantics()`, which strips this field.
            mem: None,
        }
    }
}
